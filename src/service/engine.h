#ifndef VALMOD_SERVICE_ENGINE_H_
#define VALMOD_SERVICE_ENGINE_H_

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "catalog/catalog.h"
#include "catalog/singleflight.h"
#include "obs/slow_query.h"
#include "service/executor.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "service/result_cache.h"
#include "util/common.h"
#include "util/status.h"

namespace valmod {

/// Tuning knobs of a QueryEngine. Defaults suit an embeddable in-process
/// engine; valmod_serve exposes each as a flag.
struct QueryEngineOptions {
  /// Executor worker threads; <= 0 picks hardware_concurrency().
  int workers = 0;
  /// Bound on admitted-but-not-running jobs (admission control).
  Index queue_capacity = 64;
  /// Result-cache byte budget across all shards.
  std::size_t cache_bytes = 64u << 20;
  /// Result-cache shard count.
  int cache_shards = 8;
  /// Threads per ParallelStomp call. Kept at 1 by default so concurrency
  /// comes from running independent jobs, not from splitting one; the
  /// answer is bit-identical either way (the kernel's determinism
  /// guarantee).
  int stomp_threads = 1;
  /// Largest series a request may submit or generate.
  Index max_series_points = Index{1} << 22;
  /// Largest length range (len_max - len_min + 1) a request may ask for.
  Index max_lengths = 512;
  /// Largest per-length top-K a request may ask for. Freshly computed
  /// artifacts store top-K lists exactly this deep, so any admissible k is
  /// served from cache, catalog, or a coalesced flight by prefix
  /// truncation.
  Index max_k = 64;
  /// Slow-query log threshold in milliseconds: compute requests slower than
  /// this emit one structured "slow_query" warning with their stage
  /// timings. <= 0 (the default) disables the log.
  double slow_query_ms = 0.0;
  /// Root directory of the persisted artifact catalog (src/catalog);
  /// empty (the default) disables the catalog entirely.
  std::string catalog_dir;
  /// Catalog shard-directory count (clamped to [1, 64]).
  int catalog_shards = 8;
  /// Byte budget for the catalog's resident (parsed, in-memory) artifacts.
  std::size_t catalog_resident_bytes = 256u << 20;
  /// Write freshly computed artifacts through to the catalog, so the next
  /// process (or a restart) serves them without recomputing. Only
  /// meaningful with catalog_dir set.
  bool catalog_write = true;
};

/// The embeddable query engine: validation, admission control, execution
/// on the deterministic ParallelStomp kernel, result caching, the
/// persisted artifact catalog, in-flight request coalescing, and metrics.
/// The TCP server (service/server.h) is an event-loop framing shell around
/// one of these; tests and benchmarks call Execute() directly.
///
/// A cold request flows: result cache -> singleflight coalescer ->
/// executor worker -> artifact catalog -> (on catalog miss) one
/// deterministic build that is written through to the catalog and
/// delivered to every coalesced waiter. Every path produces responses
/// bit-identical to a direct library call.
class QueryEngine {
 public:
  /// Delivery callback of ExecuteAsync; invoked exactly once per request,
  /// possibly synchronously on the calling thread (stats, validation
  /// errors, cache hits) and otherwise on an executor worker.
  using ResponseCallback = std::function<void(Response)>;

  /// Starts the worker pool (and opens the catalog when configured).
  explicit QueryEngine(const QueryEngineOptions& options = {});

  /// Drains outstanding work (see Drain()).
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Answers one request, blocking until the answer (or error) is ready.
  /// Never aborts on bad input: every failure is a Response with
  /// `ok == false` and a StatusCodeName error code — RESOURCE_EXHAUSTED
  /// for backpressure, DEADLINE_EXCEEDED for lapsed deadlines,
  /// INVALID_ARGUMENT/NOT_FOUND for bad requests.
  Response Execute(const Request& request);

  /// The non-blocking face of Execute(): same request/response semantics,
  /// but the caller's thread is never parked. `done` fires exactly once —
  /// synchronously for requests that never reach the executor (stats,
  /// validation errors, result-cache hits), on a worker thread otherwise.
  /// This is what lets the server's I/O event loop multiplex hundreds of
  /// connections over a fixed worker pool.
  void ExecuteAsync(const Request& request, ResponseCallback done);

  /// Stops admitting compute jobs (they get RESOURCE_EXHAUSTED), finishes
  /// every admitted one, and joins the workers. STATS requests still work
  /// afterwards. Idempotent.
  void Drain();

  /// The metrics registry (exposed via the STATS query type).
  MetricsRegistry& metrics() { return metrics_; }

  /// The result cache (read-only view for tests and gauges).
  const ResultCache& cache() const { return cache_; }

  /// The executor (read-only view for tests).
  const Executor& executor() const { return executor_; }

  /// The persisted artifact catalog, or nullptr when disabled (read-only
  /// view for tests and gauges).
  const catalog::Catalog* artifact_catalog() const { return catalog_.get(); }

  /// The request coalescer (read-only view for tests and gauges).
  const catalog::Singleflight& flight() const { return flight_; }

  /// The active options.
  const QueryEngineOptions& options() const { return options_; }

 private:
  /// Everything one in-flight request carries between the calling thread,
  /// the executor worker, and (for coalesced followers) the leader's
  /// worker. Heap-allocated and shared because the async pipeline hops
  /// threads; every hop hands off through a mutex, so the non-atomic
  /// members are written by one thread at a time.
  struct Pending;

  /// Materializes the request's series: inline data verbatim, or the named
  /// synthetic dataset generated deterministically from (dataset, n).
  Status ResolveSeries(const Request& request, Series* storage,
                       std::span<const double>* out) const;
  /// Parameter sanity checks against the resolved series length `n`.
  Status ValidateRequest(const Request& request, Index n) const;
  /// Enters the cold path for a cache miss: joins (or opens) the
  /// singleflight for coalescable requests, then submits the leader's job.
  void StartColdPath(const std::shared_ptr<Pending>& state);
  /// Submits the compute job to the executor; on admission failure the
  /// flight (when led) completes with RESOURCE_EXHAUSTED.
  void SubmitCompute(const std::shared_ptr<Pending>& state, bool leader);
  /// Terminal delivery: projects the artifact for this request's k, stores
  /// it in the result cache, builds and delivers the response (or the
  /// error), and feeds metrics and the slow-query log.
  void DeliverArtifact(
      const std::shared_ptr<Pending>& state,
      const std::shared_ptr<const catalog::MotifArtifact>& artifact,
      const Status& status);
  /// Projects a full artifact down to a result-cache entry for one
  /// request's k (top-K prefix truncation; see docs/CATALOG.md).
  CachedArtifact ProjectArtifact(const catalog::MotifArtifact& artifact,
                                 Index k) const;
  /// Projects the artifact into the sections `request.type` asks for; a
  /// cached artifact and a fresh one serialize byte-identically.
  Response BuildResponse(const Request& request,
                         const CachedArtifact& artifact, bool cached,
                         std::uint64_t fingerprint) const;
  /// Delivers a terminal response: elapsed time, latency histogram (for
  /// successes), the slow-query log, then the callback.
  void FinishResponse(const std::shared_ptr<Pending>& state,
                      Response response, bool observe_latency);
  /// Feeds the slow-query log (and its counter) after a finished request.
  void LogIfSlow(const Request& request, const Response& response,
                 const obs::StageRecorder& stages);

  QueryEngineOptions options_;
  MetricsRegistry metrics_;
  obs::SlowQueryLog slow_log_;
  ResultCache cache_;
  /// unguarded: created in the constructor before any worker exists;
  /// internally synchronized afterwards.
  std::unique_ptr<catalog::Catalog> catalog_;
  catalog::Singleflight flight_;  // unguarded: internally synchronized
  Executor executor_;  // last member: joins before the cache/catalog die
};

}  // namespace valmod

#endif  // VALMOD_SERVICE_ENGINE_H_
