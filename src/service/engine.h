#ifndef VALMOD_SERVICE_ENGINE_H_
#define VALMOD_SERVICE_ENGINE_H_

#include <span>

#include "obs/slow_query.h"
#include "service/executor.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "service/result_cache.h"
#include "util/common.h"
#include "util/status.h"

namespace valmod {

/// Tuning knobs of a QueryEngine. Defaults suit an embeddable in-process
/// engine; valmod_serve exposes each as a flag.
struct QueryEngineOptions {
  /// Executor worker threads; <= 0 picks hardware_concurrency().
  int workers = 0;
  /// Bound on admitted-but-not-running jobs (admission control).
  Index queue_capacity = 64;
  /// Result-cache byte budget across all shards.
  std::size_t cache_bytes = 64u << 20;
  /// Result-cache shard count.
  int cache_shards = 8;
  /// Threads per ParallelStomp call. Kept at 1 by default so concurrency
  /// comes from running independent jobs, not from splitting one; the
  /// answer is bit-identical either way (the kernel's determinism
  /// guarantee).
  int stomp_threads = 1;
  /// Largest series a request may submit or generate.
  Index max_series_points = Index{1} << 22;
  /// Largest length range (len_max - len_min + 1) a request may ask for.
  Index max_lengths = 512;
  /// Largest per-length top-K a request may ask for.
  Index max_k = 64;
  /// Slow-query log threshold in milliseconds: compute requests slower than
  /// this emit one structured "slow_query" warning with their stage
  /// timings. <= 0 (the default) disables the log.
  double slow_query_ms = 0.0;
};

/// The embeddable query engine: validation, admission control, execution
/// on the deterministic ParallelStomp kernel, result caching, and metrics.
/// The TCP server (service/server.h) is a thin framing shell around one of
/// these; tests and benchmarks call Execute() directly.
///
/// Execute() is safe to call from any number of threads concurrently: the
/// caller's thread blocks while an executor worker computes, so the
/// executor pool bounds CPU parallelism and the queue bounds memory.
class QueryEngine {
 public:
  /// Starts the worker pool.
  explicit QueryEngine(const QueryEngineOptions& options = {});

  /// Drains outstanding work (see Drain()).
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Answers one request, blocking until the answer (or error) is ready.
  /// Never aborts on bad input: every failure is a Response with
  /// `ok == false` and a StatusCodeName error code — RESOURCE_EXHAUSTED
  /// for backpressure, DEADLINE_EXCEEDED for lapsed deadlines,
  /// INVALID_ARGUMENT/NOT_FOUND for bad requests.
  Response Execute(const Request& request);

  /// Stops admitting compute jobs (they get RESOURCE_EXHAUSTED), finishes
  /// every admitted one, and joins the workers. STATS requests still work
  /// afterwards. Idempotent.
  void Drain();

  /// The metrics registry (exposed via the STATS query type).
  MetricsRegistry& metrics() { return metrics_; }

  /// The result cache (read-only view for tests and gauges).
  const ResultCache& cache() const { return cache_; }

  /// The executor (read-only view for tests).
  const Executor& executor() const { return executor_; }

  /// The active options.
  const QueryEngineOptions& options() const { return options_; }

 private:
  /// Materializes the request's series: inline data verbatim, or the named
  /// synthetic dataset generated deterministically from (dataset, n).
  Status ResolveSeries(const Request& request, Series* storage,
                       std::span<const double>* out) const;
  /// Parameter sanity checks against the resolved series length `n`.
  Status ValidateRequest(const Request& request, Index n) const;
  /// Runs the full computation for every length in [len_min, len_max] via
  /// deterministic ParallelStomp (centered once, one PrefixStats), so
  /// answers are bit-identical to direct library calls.
  CachedArtifact ComputeArtifact(std::span<const double> series,
                                 const Request& request,
                                 const Deadline& deadline, bool* dnf) const;
  /// Projects the artifact into the sections `request.type` asks for; a
  /// cached artifact and a fresh one serialize byte-identically.
  Response BuildResponse(const Request& request,
                         const CachedArtifact& artifact, bool cached,
                         std::uint64_t fingerprint) const;
  /// Feeds the slow-query log (and its counter) after a finished request.
  void LogIfSlow(const Request& request, const Response& response,
                 const obs::StageRecorder& stages);

  QueryEngineOptions options_;
  MetricsRegistry metrics_;
  obs::SlowQueryLog slow_log_;
  ResultCache cache_;
  Executor executor_;  // last member: joins before the cache/metrics die
};

}  // namespace valmod

#endif  // VALMOD_SERVICE_ENGINE_H_
