#include "service/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace valmod {

void LatencyHistogram::Observe(double us) {
  if (!(us >= 0.0)) us = 0.0;  // NaN and negatives clamp to the first bucket
  int bucket = 0;
  // Smallest b with us < BucketUpperEdgeUs(b): sub-microsecond observations
  // stay in bucket 0 so their reported upper bound is 1us, never 0.
  std::int64_t edge = 1;
  while (bucket < kBuckets - 1 && us >= static_cast<double>(edge)) {
    ++bucket;
    edge <<= 1;
  }
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(static_cast<std::int64_t>(us), std::memory_order_relaxed);
}

std::int64_t LatencyHistogram::TotalCount() const {
  return total_.load(std::memory_order_relaxed);
}

double LatencyHistogram::QuantileUpperBoundUs(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::int64_t total = TotalCount();
  if (total == 0) return 0.0;
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total))));
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    if (seen >= rank) return static_cast<double>(BucketUpperEdgeUs(b));
  }
  return static_cast<double>(BucketUpperEdgeUs(kBuckets - 1));
}

std::int64_t LatencyHistogram::BucketCount(int b) const {
  if (b < 0 || b >= kBuckets) return 0;
  return buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
}

double LatencyHistogram::SumUs() const {
  return static_cast<double>(sum_us_.load(std::memory_order_relaxed));
}

MetricCounter* MetricsRegistry::GetCounter(const std::string& name) {
  const MutexLock lock(&mu_);
  std::unique_ptr<MetricCounter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<MetricCounter>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  const MutexLock lock(&mu_);
  std::unique_ptr<LatencyHistogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

void MetricsRegistry::SetGauge(const std::string& name,
                               std::function<std::int64_t()> fn) {
  const MutexLock lock(&mu_);
  gauges_[name] = std::move(fn);
}

MetricsRegistry::Rows MetricsRegistry::CollectLocked() const {
  Rows rows;
  rows.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    rows.counters.emplace_back(name, counter->Value());
  rows.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_)
    rows.histograms.emplace_back(name, histogram.get());
  rows.gauges.reserve(gauges_.size());
  for (const auto& [name, fn] : gauges_) rows.gauges.emplace_back(name, fn);
  return rows;
}

std::string MetricsRegistry::Exposition() const {
  // Collect under the lock, render (and sample gauges) outside it — see
  // CollectLocked's contract.
  Rows rows;
  {
    const MutexLock lock(&mu_);
    rows = CollectLocked();
  }
  // All three maps are sorted and their key spaces are kept disjoint by
  // convention, so a simple three-way merge yields name-sorted output.
  std::vector<std::pair<std::string, std::string>> lines;
  char buf[160];
  for (const auto& [name, value] : rows.counters) {
    std::snprintf(buf, sizeof(buf), "valmod_%s %lld", name.c_str(),
                  static_cast<long long>(value));
    lines.emplace_back(name, buf);
  }
  for (const auto& [name, histogram] : rows.histograms) {
    const std::int64_t count = histogram->TotalCount();
    const double mean =
        count > 0 ? histogram->SumUs() / static_cast<double>(count) : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "valmod_%s_count %lld\nvalmod_%s_mean_us %.1f\n"
                  "valmod_%s_p50_us %.0f\nvalmod_%s_p90_us %.0f\n"
                  "valmod_%s_p99_us %.0f",
                  name.c_str(), static_cast<long long>(count), name.c_str(),
                  mean, name.c_str(), histogram->QuantileUpperBoundUs(0.5),
                  name.c_str(), histogram->QuantileUpperBoundUs(0.9),
                  name.c_str(), histogram->QuantileUpperBoundUs(0.99));
    lines.emplace_back(name, buf);
  }
  for (const auto& [name, fn] : rows.gauges) {
    std::snprintf(buf, sizeof(buf), "valmod_%s %lld", name.c_str(),
                  static_cast<long long>(fn ? fn() : 0));
    lines.emplace_back(name, buf);
  }
  std::sort(lines.begin(), lines.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out;
  for (const auto& [name, text] : lines) {
    out.append(text);
    out.push_back('\n');
  }
  return out;
}

std::string MetricsRegistry::PrometheusText() const {
  // Same snapshot-then-render structure as Exposition(): collect under the
  // lock, sample gauges and histogram cells outside it.
  Rows rows;
  {
    const MutexLock lock(&mu_);
    rows = CollectLocked();
  }
  std::string out;
  char buf[192];
  for (const auto& [name, value] : rows.counters) {
    std::snprintf(buf, sizeof(buf),
                  "# TYPE valmod_%s counter\nvalmod_%s %lld\n", name.c_str(),
                  name.c_str(), static_cast<long long>(value));
    out.append(buf);
  }
  for (const auto& [name, fn] : rows.gauges) {
    std::snprintf(buf, sizeof(buf),
                  "# TYPE valmod_%s gauge\nvalmod_%s %lld\n", name.c_str(),
                  name.c_str(), static_cast<long long>(fn ? fn() : 0));
    out.append(buf);
  }
  for (const auto& [name, histogram] : rows.histograms) {
    std::snprintf(buf, sizeof(buf), "# TYPE valmod_%s_us histogram\n",
                  name.c_str());
    out.append(buf);
    // Cumulative le-series through the highest non-empty bucket; the first
    // edge always renders so empty histograms still expose one series.
    int last = 0;
    for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
      if (histogram->BucketCount(b) > 0) last = b;
    }
    std::int64_t cumulative = 0;
    for (int b = 0; b <= last; ++b) {
      cumulative += histogram->BucketCount(b);
      std::snprintf(buf, sizeof(buf),
                    "valmod_%s_us_bucket{le=\"%lld\"} %lld\n", name.c_str(),
                    static_cast<long long>(
                        LatencyHistogram::BucketUpperEdgeUs(b)),
                    static_cast<long long>(cumulative));
      out.append(buf);
    }
    const std::int64_t count = histogram->TotalCount();
    std::snprintf(buf, sizeof(buf),
                  "valmod_%s_us_bucket{le=\"+Inf\"} %lld\n"
                  "valmod_%s_us_sum %.0f\nvalmod_%s_us_count %lld\n",
                  name.c_str(), static_cast<long long>(count), name.c_str(),
                  histogram->SumUs(), name.c_str(),
                  static_cast<long long>(count));
    out.append(buf);
  }
  return out;
}

}  // namespace valmod
