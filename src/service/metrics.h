#ifndef VALMOD_SERVICE_METRICS_H_
#define VALMOD_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/common.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace valmod {

/// A monotonically increasing counter. Lock-free; relaxed ordering is
/// enough because counters are statistics, not synchronization.
class MetricCounter {
 public:
  /// Adds `delta` (default 1).
  void Increment(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Current value.
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A latency histogram over power-of-two microsecond buckets
/// (1us, 2us, 4us, ... ~4.9 hours). Power-of-two edges keep Observe() to a
/// handful of instructions on the request hot path and still bound every
/// reported quantile within a factor of two — plenty for p50/p99 dashboards.
class LatencyHistogram {
 public:
  /// Number of buckets; bucket 0 covers [0, 1) and bucket b >= 1 covers
  /// [2^(b-1), 2^b) microseconds.
  static constexpr int kBuckets = 45;

  /// Upper edge of bucket `b` in microseconds (1 for bucket 0, else 2^b);
  /// the `le` labels of the Prometheus exposition.
  static constexpr std::int64_t BucketUpperEdgeUs(int b) {
    return std::int64_t{1} << b;
  }

  /// Records one observation of `us` microseconds.
  void Observe(double us);

  /// Total number of observations.
  std::int64_t TotalCount() const;

  /// Observations landed in bucket `b` (0 <= b < kBuckets).
  std::int64_t BucketCount(int b) const;

  /// Upper edge (microseconds) of the bucket containing quantile `q` of
  /// the observations, i.e. an upper bound within 2x of the true quantile
  /// (sub-microsecond observations report 1). Returns 0 when empty. `q` is
  /// clamped into [0, 1].
  double QuantileUpperBoundUs(double q) const;

  /// Sum of all observed values, microseconds (for mean latency).
  double SumUs() const;

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> total_{0};
  /// Microsecond sum stored as an integer so the counter stays lock-free.
  std::atomic<std::int64_t> sum_us_{0};
};

/// Registry of named counters, latency histograms, and gauge callbacks,
/// with a deterministic text exposition served by the STATS query type.
/// Get* returns a stable pointer that lives as long as the registry; the
/// maps are node-based so registration never invalidates prior pointers.
class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it on first use.
  MetricCounter* GetCounter(const std::string& name) EXCLUDES(mu_);

  /// Returns the histogram named `name`, creating it on first use.
  LatencyHistogram* GetHistogram(const std::string& name) EXCLUDES(mu_);

  /// Registers (or replaces) a gauge: `fn` is sampled at exposition time,
  /// so gauges always report live values (e.g. current cache bytes).
  void SetGauge(const std::string& name, std::function<std::int64_t()> fn)
      EXCLUDES(mu_);

  /// Text exposition, one `valmod_<name> <value>` line per metric, sorted
  /// by name. Histograms expose `<name>_count`, `<name>_mean_us`, and
  /// `<name>_p{50,90,99}_us` lines.
  std::string Exposition() const;

  /// Prometheus text exposition format 0.0.4: `# TYPE` comments plus
  /// counter/gauge sample lines, and each histogram as cumulative
  /// `valmod_<name>_us_bucket{le="..."}` series (through the highest
  /// non-empty bucket, then `+Inf`) with `_sum` and `_count`. Served by the
  /// HTTP gateway's GET /metrics.
  std::string PrometheusText() const;

 private:
  /// A registry snapshot taken under mu_ and rendered outside it, so a
  /// gauge callback that itself takes a lock cannot deadlock the registry.
  /// Counter values are copied; histogram cells and gauges are sampled at
  /// render time (the pointers outlive the registry's maps by node-based
  /// map stability).
  struct Rows {
    std::vector<std::pair<std::string, std::int64_t>> counters;
    std::vector<std::pair<std::string, const LatencyHistogram*>> histograms;
    std::vector<std::pair<std::string, std::function<std::int64_t()>>> gauges;
  };

  /// Copies every registered metric into a Rows snapshot. The caller holds
  /// mu_; both expositions render from the same snapshot shape.
  Rows CollectLocked() const REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      GUARDED_BY(mu_);
  std::map<std::string, std::function<std::int64_t()>> gauges_
      GUARDED_BY(mu_);
};

}  // namespace valmod

#endif  // VALMOD_SERVICE_METRICS_H_
