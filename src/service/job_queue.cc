#include "service/job_queue.h"

#include <algorithm>
#include <utility>

namespace valmod {

JobQueue::JobQueue(Index capacity)
    : capacity_(std::max<Index>(1, capacity)) {}

Status JobQueue::Push(Job job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_)
      return Status::ResourceExhausted("job queue is draining");
    if (size_ >= capacity_)
      return Status::ResourceExhausted(
          "job queue full (" + std::to_string(capacity_) +
          " queued); back off and retry");
    const int priority =
        std::clamp(job.priority, kPriorityHigh, kPriorityLow);
    job.priority = priority;
    lanes_[static_cast<std::size_t>(priority)].push_back(std::move(job));
    ++size_;
  }
  cv_.notify_one();
  return Status::Ok();
}

bool JobQueue::Pop(Job* out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return size_ > 0 || closed_; });
  if (size_ == 0) return false;  // closed and drained
  for (std::deque<Job>& lane : lanes_) {
    if (lane.empty()) continue;
    *out = std::move(lane.front());
    lane.pop_front();
    --size_;
    return true;
  }
  return false;  // unreachable: size_ > 0 implies a non-empty lane
}

void JobQueue::Close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

Index JobQueue::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

bool JobQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace valmod
