#include "service/job_queue.h"

#include <algorithm>
#include <utility>

namespace valmod {

JobQueue::JobQueue(Index capacity)
    : capacity_(std::max<Index>(1, capacity)) {}

Status JobQueue::Push(Job job) {
  {
    const MutexLock lock(&mu_);
    if (closed_)
      return Status::ResourceExhausted("job queue is draining");
    if (size_ >= capacity_)
      return Status::ResourceExhausted(
          "job queue full (" + std::to_string(capacity_) +
          " queued); back off and retry");
    const int priority =
        std::clamp(job.priority, kPriorityHigh, kPriorityLow);
    job.priority = priority;
    lanes_[static_cast<std::size_t>(priority)].push_back(std::move(job));
    ++size_;
  }
  cv_.NotifyOne();
  return Status::Ok();
}

bool JobQueue::Pop(Job* out) {
  const MutexLock lock(&mu_);
  // Condition loop instead of a predicate lambda: the analysis cannot see
  // into lambdas, but it proves these guarded reads happen under mu_.
  while (size_ == 0 && !closed_) cv_.Wait(mu_);
  if (size_ == 0) return false;  // closed and drained
  return PopLocked(out);
}

bool JobQueue::PopLocked(Job* out) {
  for (std::deque<Job>& lane : lanes_) {
    if (lane.empty()) continue;
    *out = std::move(lane.front());
    lane.pop_front();
    --size_;
    return true;
  }
  return false;  // unreachable: size_ > 0 implies a non-empty lane
}

void JobQueue::Close() {
  {
    const MutexLock lock(&mu_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

Index JobQueue::size() const {
  const MutexLock lock(&mu_);
  return size_;
}

bool JobQueue::closed() const {
  const MutexLock lock(&mu_);
  return closed_;
}

}  // namespace valmod
