#include "service/fingerprint.h"

#include <cstdio>
#include <cstring>

namespace valmod {

std::uint64_t Fnv1a64(const void* data, std::size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<std::uint64_t>(bytes[i]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t SeriesFingerprint(std::span<const double> series) {
  const std::uint64_t n = static_cast<std::uint64_t>(series.size());
  std::uint64_t hash = Fnv1a64(&n, sizeof(n));
  // Continue the running FNV state over the value bytes rather than
  // restarting, so (length, values) hash as one message.
  const unsigned char* bytes =
      reinterpret_cast<const unsigned char*>(series.data());
  const std::size_t size = series.size() * sizeof(double);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<std::uint64_t>(bytes[i]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string FingerprintHex(std::uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buf, 16);
}

}  // namespace valmod
