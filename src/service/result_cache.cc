#include "service/result_cache.h"

#include <algorithm>

#include "service/fingerprint.h"

namespace valmod {

std::size_t CacheKeyHash::operator()(const CacheKey& key) const {
  // FNV over the packed fields: cheap, and the shard selector needs the
  // high bits to be as mixed as the low ones, which FNV-1a provides.
  const std::uint64_t packed[5] = {
      key.fingerprint, static_cast<std::uint64_t>(key.len_min),
      static_cast<std::uint64_t>(key.len_max),
      static_cast<std::uint64_t>(key.p), static_cast<std::uint64_t>(key.k)};
  return static_cast<std::size_t>(Fnv1a64(packed, sizeof(packed)));
}

std::size_t CachedArtifact::ApproxBytes() const {
  std::size_t total = sizeof(CachedArtifact);
  for (const LengthResult& lr : lengths) {
    total += sizeof(LengthResult);
    total += lr.top_k.capacity() * sizeof(MotifPair);
  }
  return total;
}

ResultCache::ResultCache(std::size_t byte_budget, int shards)
    : byte_budget_(byte_budget),
      shards_(static_cast<std::size_t>(std::clamp(shards, 1, 64))) {
  shard_budget_ = byte_budget_ / shards_.size();
}

ResultCache::Shard& ResultCache::ShardFor(const CacheKey& key) {
  const std::size_t hash = CacheKeyHash()(key);
  // The low bits feed the unordered_map inside the shard; take the high
  // bits for shard selection so the two partitions stay independent.
  return shards_[(hash >> 17) % shards_.size()];
}

bool ResultCache::Get(const CacheKey& key, CachedArtifact* out) {
  Shard& shard = ShardFor(key);
  const MutexLock lock(&shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->artifact;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::Put(const CacheKey& key, const CachedArtifact& artifact) {
  const std::size_t entry_bytes = artifact.ApproxBytes() + sizeof(Entry);
  Shard& shard = ShardFor(key);
  const MutexLock lock(&shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  if (entry_bytes > shard_budget_) {
    oversize_rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  shard.lru.push_front(Entry{key, artifact, entry_bytes});
  shard.index[key] = shard.lru.begin();
  shard.bytes += entry_bytes;
  EvictToBudgetLocked(shard);
}

void ResultCache::EvictToBudgetLocked(Shard& shard) {
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ResultCache::Clear() {
  for (Shard& shard : shards_) {
    const MutexLock lock(&shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

std::size_t ResultCache::bytes() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const MutexLock lock(&shard.mu);
    total += shard.bytes;
  }
  return total;
}

Index ResultCache::entries() const {
  Index total = 0;
  for (const Shard& shard : shards_) {
    const MutexLock lock(&shard.mu);
    total += static_cast<Index>(shard.lru.size());
  }
  return total;
}

}  // namespace valmod
