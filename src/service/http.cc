#include "service/http.h"

#include <cstdio>
#include <utility>

#include "service/net.h"

namespace valmod {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

std::string RenderResponse(const HttpResponse& response) {
  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                response.status, StatusText(response.status),
                response.content_type.c_str(), response.body.size());
  return std::string(header) + response.body;
}

/// Splits "GET /path HTTP/1.1" out of the request head; empty method on a
/// malformed request line.
void ParseRequestLine(const std::string& head, std::string* method,
                      std::string* path) {
  const std::size_t line_end = head.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return;
  *method = line.substr(0, sp1);
  *path = line.substr(sp1 + 1, sp2 - sp1 - 1);
}

/// Request heads beyond this are rejected; scrape requests are < 1 KiB.
constexpr std::size_t kMaxHeadBytes = 8192;

}  // namespace

HttpGateway::HttpGateway(HttpGatewayOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpGateway::~HttpGateway() { Shutdown(); }

Status HttpGateway::Start() {
  Status status =
      net::Listen(options_.host, options_.port, /*backlog=*/16, &listen_fd_,
                  &port_);
  if (!status.ok()) return status;
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this]() { ServeLoop(); });
  return Status::Ok();
}

void HttpGateway::Shutdown() {
  stopping_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
}

void HttpGateway::ServeLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = -1;
    const Status status = net::Accept(listen_fd_, /*timeout_s=*/0.2, &fd);
    if (!status.ok()) continue;  // Timeout: re-check the stop flag.
    HandleConnection(fd);
    net::CloseFd(fd);
  }
}

void HttpGateway::HandleConnection(int fd) {
  std::string head;
  const Status status = net::ReadHttpHead(fd, options_.read_timeout_s,
                                          &stopping_, kMaxHeadBytes, &head);
  if (!status.ok()) return;  // Timeout/garbage: just drop the connection.
  std::string method;
  std::string path;
  ParseRequestLine(head, &method, &path);
  HttpResponse response;
  if (method.empty() || path.empty()) {
    response.status = 400;
    response.body = "malformed request line\n";
  } else if (method != "GET") {
    response.status = 405;
    response.body = "only GET is served here\n";
  } else if (handler_) {
    response = handler_(path);
  } else {
    response.status = 404;
    response.body = "no handler\n";
  }
  net::SendAll(fd, RenderResponse(response));
}

}  // namespace valmod
