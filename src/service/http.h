#ifndef VALMOD_SERVICE_HTTP_H_
#define VALMOD_SERVICE_HTTP_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "util/status.h"

namespace valmod {

/// One HTTP response produced by a gateway handler.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Configuration of the observability HTTP gateway.
struct HttpGatewayOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port.
  int port = 0;
  /// Per-request read timeout; the gateway serves local scrapers, so slow
  /// clients are cut off quickly.
  double read_timeout_s = 5.0;
};

/// A minimal single-threaded HTTP/1.1 listener for the service's
/// observability surface (GET /metrics, /healthz, /trace/*). It is NOT a
/// general web server: GET only, no request bodies, no keep-alive
/// (Connection: close on every response), requests served serially by one
/// accept thread — exactly what a scrape endpoint needs, reusing the
/// service/net socket primitives.
class HttpGateway {
 public:
  /// Handler mapped over the request path (no query-string splitting; the
  /// path arrives verbatim). Runs on the gateway thread.
  using Handler = std::function<HttpResponse(const std::string& path)>;

  /// Creates a stopped gateway; Start() binds the socket.
  HttpGateway(HttpGatewayOptions options, Handler handler);

  /// Stops and joins the serving thread.
  ~HttpGateway();

  HttpGateway(const HttpGateway&) = delete;
  HttpGateway& operator=(const HttpGateway&) = delete;

  /// Binds host:port and starts the serving thread.
  Status Start();

  /// Stops accepting, closes the listener, joins the thread. Idempotent.
  void Shutdown();

  /// The bound port (valid after Start()).
  int port() const { return port_; }

 private:
  /// Accept loop: serves connections serially until Shutdown().
  void ServeLoop();
  /// Reads one GET request head and writes the handler's response.
  void HandleConnection(int fd);

  HttpGatewayOptions options_;
  Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace valmod

#endif  // VALMOD_SERVICE_HTTP_H_
