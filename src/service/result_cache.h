#ifndef VALMOD_SERVICE_RESULT_CACHE_H_
#define VALMOD_SERVICE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "core/ranking.h"
#include "mp/matrix_profile.h"
#include "service/protocol.h"
#include "util/common.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace valmod {

/// Key of one cached artifact: the series fingerprint plus every parameter
/// the computation depends on. Two requests with the same key get
/// byte-identical answers regardless of query type, which is why all query
/// types share one cache (docs/SERVICE.md, "Cache keying").
struct CacheKey {
  std::uint64_t fingerprint = 0;
  Index len_min = 0;
  Index len_max = 0;
  Index p = 0;
  Index k = 0;

  bool operator==(const CacheKey& other) const = default;
};

/// Hash for CacheKey; also selects the cache shard.
struct CacheKeyHash {
  /// FNV-1a style mix of every key field.
  std::size_t operator()(const CacheKey& key) const;
};

/// The full computed answer for one (series, parameters) key: per-length
/// motif/top-K/discord/profile-summary sections plus the cross-length
/// length-normalized winners. Responses are projections of this.
struct CachedArtifact {
  /// One entry per length in [len_min, len_max], ascending, all `has_*`
  /// flags set.
  std::vector<LengthResult> lengths;
  bool has_best_motif = false;
  RankedPair best_motif;
  bool has_best_discord = false;
  Discord best_discord;
  double best_discord_norm = -kInf;

  /// Heap footprint estimate used against the cache byte budget.
  std::size_t ApproxBytes() const;
};

/// A sharded LRU cache with a global byte budget. Each shard owns an
/// independent mutex, LRU list, and budget slice (total / shards), so
/// concurrent lookups on different keys rarely contend; eviction is
/// strictly least-recently-used within a shard. An artifact larger than a
/// shard's whole slice is not admitted at all (counted in
/// `oversize_rejects`) — admitting it would evict an entire shard for one
/// entry that can never pay its rent.
class ResultCache {
 public:
  /// `byte_budget` caps the summed ApproxBytes of live entries across all
  /// shards; `shards` is clamped to [1, 64].
  explicit ResultCache(std::size_t byte_budget, int shards = 8);

  /// Looks up `key`; on a hit copies the artifact into `*out`, promotes
  /// the entry to most-recently-used, and returns true.
  bool Get(const CacheKey& key, CachedArtifact* out);

  /// Inserts or replaces `key`, then evicts least-recently-used entries
  /// until the shard is back under its budget slice.
  void Put(const CacheKey& key, const CachedArtifact& artifact);

  /// Drops every entry (all shards).
  void Clear();

  /// Live bytes aggregated across shards (takes every shard lock).
  std::size_t bytes() const;
  /// Live entry count aggregated across shards.
  Index entries() const;
  /// Lookups that found their key.
  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Lookups that missed.
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Entries dropped to get a shard back under its budget slice.
  std::int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Artifacts too large for a whole shard slice, never admitted.
  std::int64_t oversize_rejects() const {
    return oversize_rejects_.load(std::memory_order_relaxed);
  }
  /// The configured total byte budget.
  std::size_t byte_budget() const { return byte_budget_; }
  /// The number of shards after clamping.
  int shard_count() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    CacheKey key;
    CachedArtifact artifact;
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable Mutex mu;
    /// Front = most recently used; eviction pops from the back.
    std::list<Entry> lru GUARDED_BY(mu);
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
        index GUARDED_BY(mu);
    std::size_t bytes GUARDED_BY(mu) = 0;
  };

  /// Maps a key's hash onto its owning shard.
  Shard& ShardFor(const CacheKey& key);

  /// Pops least-recently-used entries until `shard` is back under its
  /// budget slice; counts each pop in evictions_.
  void EvictToBudgetLocked(Shard& shard) REQUIRES(shard.mu);

  const std::size_t byte_budget_;
  std::size_t shard_budget_;
  std::vector<Shard> shards_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> evictions_{0};
  std::atomic<std::int64_t> oversize_rejects_{0};
};

}  // namespace valmod

#endif  // VALMOD_SERVICE_RESULT_CACHE_H_
