#include "mp/brute_force.h"

#include "signal/znorm.h"
#include "util/check.h"

namespace valmod {

MatrixProfile BruteForceMatrixProfile(std::span<const double> series,
                                      Index len) {
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(len >= 2 && n >= len + 1);
  const Index n_sub = NumSubsequences(n, len);

  MatrixProfile result;
  result.subsequence_length = len;
  result.distances.assign(static_cast<std::size_t>(n_sub), kInf);
  result.indices.assign(static_cast<std::size_t>(n_sub), kNoNeighbor);

  std::vector<std::vector<double>> znormed(static_cast<std::size_t>(n_sub));
  for (Index i = 0; i < n_sub; ++i) {
    znormed[static_cast<std::size_t>(i)] =
        ZNormalizeSubsequence(series, i, len);
  }
  for (Index i = 0; i < n_sub; ++i) {
    for (Index j = i + 1; j < n_sub; ++j) {
      if (IsTrivialMatch(i, j, len)) continue;
      const double d = EuclideanDistance(znormed[static_cast<std::size_t>(i)],
                                         znormed[static_cast<std::size_t>(j)]);
      if (d < result.distances[static_cast<std::size_t>(i)]) {
        result.distances[static_cast<std::size_t>(i)] = d;
        result.indices[static_cast<std::size_t>(i)] = j;
      }
      if (d < result.distances[static_cast<std::size_t>(j)]) {
        result.distances[static_cast<std::size_t>(j)] = d;
        result.indices[static_cast<std::size_t>(j)] = i;
      }
    }
  }
  return result;
}

MotifPair BruteForceMotif(std::span<const double> series, Index len) {
  return MotifFromProfile(BruteForceMatrixProfile(series, len));
}

std::vector<MotifPair> BruteForceVariableLengthMotifs(
    std::span<const double> series, Index len_min, Index len_max) {
  VALMOD_CHECK(len_min >= 2 && len_max >= len_min);
  std::vector<MotifPair> out;
  out.reserve(static_cast<std::size_t>(len_max - len_min + 1));
  for (Index len = len_min; len <= len_max; ++len) {
    out.push_back(BruteForceMotif(series, len));
  }
  return out;
}

}  // namespace valmod
