#include "mp/stamp.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "mp/distance_profile.h"
#include "util/check.h"

namespace valmod {

MatrixProfile Stamp(std::span<const double> series, const PrefixStats& stats,
                    Index len, const StampOptions& options) {
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(len >= 2 && n >= len + 1);
  const Index n_sub = NumSubsequences(n, len);

  MatrixProfile result;
  result.subsequence_length = len;
  result.distances.assign(static_cast<std::size_t>(n_sub), kInf);
  result.indices.assign(static_cast<std::size_t>(n_sub), kNoNeighbor);

  std::vector<Index> order(static_cast<std::size_t>(n_sub));
  std::iota(order.begin(), order.end(), Index{0});
  if (options.randomize_order) {
    Rng rng(options.seed);
    for (Index i = n_sub - 1; i > 0; --i) {
      const Index j = rng.UniformIndex(0, i);
      std::swap(order[static_cast<std::size_t>(i)],
                order[static_cast<std::size_t>(j)]);
    }
  }

  const Index row_budget =
      options.max_rows > 0 ? std::min(options.max_rows, n_sub) : n_sub;
  for (Index step = 0; step < row_budget; ++step) {
    const Index row = order[static_cast<std::size_t>(step)];
    const std::vector<double> profile =
        ComputeDistanceProfile(series, stats, row, len);
    // Symmetric min-merge: the row's profile improves both the row entry and
    // every column entry (dist(i, j) == dist(j, i)).
    for (Index j = 0; j < n_sub; ++j) {
      const double d = profile[static_cast<std::size_t>(j)];
      if (d < result.distances[static_cast<std::size_t>(row)]) {
        result.distances[static_cast<std::size_t>(row)] = d;
        result.indices[static_cast<std::size_t>(row)] = j;
      }
      if (d < result.distances[static_cast<std::size_t>(j)]) {
        result.distances[static_cast<std::size_t>(j)] = d;
        result.indices[static_cast<std::size_t>(j)] = row;
      }
    }
    if (options.snapshot_every > 0 && options.snapshot &&
        (step + 1) % options.snapshot_every == 0) {
      options.snapshot(step + 1, result);
    }
  }
  return result;
}

}  // namespace valmod
