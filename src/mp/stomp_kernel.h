#ifndef VALMOD_MP_STOMP_KERNEL_H_
#define VALMOD_MP_STOMP_KERNEL_H_

#include <span>

#include "mp/stomp.h"
#include "util/common.h"
#include "util/prefix_stats.h"
#include "util/timer.h"

namespace valmod {
namespace internal {

/// STOMP rows are processed on a fixed grid of this many rows per chunk.
/// Every chunk re-seeds its dot-product row with MASS instead of continuing
/// the O(n)-per-row recurrence across the boundary. The grid is a property
/// of the *algorithm*, not of the thread count, which buys two guarantees:
///
///  1. Determinism: serial Stomp and ParallelStomp perform bit-identical
///     floating-point operations for every row, for any thread count, so
///     their profiles compare equal with ==, not just within a tolerance.
///  2. Bounded drift: rounding error of the QT recurrence accumulates over
///     at most kStompChunkRows steps instead of O(n).
inline constexpr Index kStompChunkRows = 256;

/// Processes rows [row_begin, row_end) of the STOMP distance matrix into
/// `distances` / `indices` (both sized to the full n_sub profile). The
/// chunk's first dot-product row is seeded with MASS; later rows use the
/// O(n) STOMP recurrence, with column 0 restored from `qt_first` (the
/// precomputed row-0 dot products; QT[i][0] == QT[0][i] by symmetry).
///
/// `observer`, when set, receives each finished row's QT and distance
/// profile (kInf inside the exclusion zone) — see StompRowObserver.
/// Returns false as soon as `deadline` expires; rows not yet finished keep
/// their initial values. Thread-safe for disjoint row ranges: everything
/// read is shared-immutable and everything written is row-indexed.
bool StompProcessRows(std::span<const double> series,
                      std::span<const MeanStd> col_stats,
                      std::span<const double> qt_first, Index len,
                      Index row_begin, Index row_end, double* distances,
                      Index* indices, const StompRowObserver& observer,
                      const Deadline& deadline);

}  // namespace internal
}  // namespace valmod

#endif  // VALMOD_MP_STOMP_KERNEL_H_
