#include "mp/stomp.h"

#include <algorithm>
#include <vector>

#include "mp/matrix_profile.h"
#include "mp/stomp_kernel.h"
#include "obs/trace.h"
#include "signal/sliding_dot.h"
#include "signal/znorm.h"
#include "util/check.h"

namespace valmod {

MatrixProfile Stomp(std::span<const double> series, const PrefixStats& stats,
                    Index len, const StompRowObserver& observer,
                    const Deadline& deadline, bool* out_dnf) {
  const obs::TraceSpan span("stomp_pass");
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(len >= 2 && n >= len + 1);
  const Index n_sub = NumSubsequences(n, len);
  if (out_dnf != nullptr) *out_dnf = false;

  MatrixProfile result;
  result.subsequence_length = len;
  result.distances.assign(static_cast<std::size_t>(n_sub), kInf);
  result.indices.assign(static_cast<std::size_t>(n_sub), kNoNeighbor);

  // First dot-product row (query = first subsequence) via MASS; kept around
  // to seed column 0 of every later row (QT[i][0] == QT[0][i] by symmetry).
  const std::vector<double> qt_first = SlidingDotProduct(
      series.subspan(0, static_cast<std::size_t>(len)), series);

  // Per-column window statistics, computed once: the row loop touches every
  // column n times, so per-use PrefixStats lookups would dominate.
  std::vector<MeanStd> col_stats(static_cast<std::size_t>(n_sub));
  for (Index j = 0; j < n_sub; ++j) {
    col_stats[static_cast<std::size_t>(j)] = stats.Stats(j, len);
  }

  // Rows run on the fixed chunk grid shared with ParallelStomp, so the two
  // produce bit-identical profiles (see stomp_kernel.h).
  for (Index begin = 0; begin < n_sub; begin += internal::kStompChunkRows) {
    const Index end = std::min<Index>(n_sub, begin + internal::kStompChunkRows);
    if (!internal::StompProcessRows(series, col_stats, qt_first, len, begin,
                                    end, result.distances.data(),
                                    result.indices.data(), observer,
                                    deadline)) {
      if (out_dnf != nullptr) *out_dnf = true;
      return result;
    }
  }
  return result;
}

MatrixProfile Stomp(std::span<const double> series, Index len) {
  // Center the input (a semantic no-op for z-normalized distances) so this
  // convenience entry point is robust to large data offsets.
  const Series centered = CenterSeries(series);
  const PrefixStats stats(centered);
  return Stomp(centered, stats, len);
}

}  // namespace valmod
