#include "mp/stomp.h"

#include <vector>

#include "mp/distance_profile.h"
#include "signal/distance.h"
#include "signal/sliding_dot.h"
#include "signal/znorm.h"
#include "util/check.h"

namespace valmod {

MatrixProfile Stomp(std::span<const double> series, const PrefixStats& stats,
                    Index len, const StompRowObserver& observer,
                    const Deadline& deadline, bool* out_dnf) {
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(len >= 2 && n >= len + 1);
  const Index n_sub = NumSubsequences(n, len);
  if (out_dnf != nullptr) *out_dnf = false;

  MatrixProfile result;
  result.subsequence_length = len;
  result.distances.assign(static_cast<std::size_t>(n_sub), kInf);
  result.indices.assign(static_cast<std::size_t>(n_sub), kNoNeighbor);

  // First dot-product row (query = first subsequence) via MASS; kept around
  // to seed column 0 of every later row (QT[i][0] == QT[0][i] by symmetry).
  std::vector<double> qt = SlidingDotProduct(
      series.subspan(0, static_cast<std::size_t>(len)), series);
  const std::vector<double> qt_first = qt;

  // Per-column window statistics, computed once: the row loop touches every
  // column n times, so per-use PrefixStats lookups would dominate.
  std::vector<MeanStd> col_stats(static_cast<std::size_t>(n_sub));
  for (Index j = 0; j < n_sub; ++j) {
    col_stats[static_cast<std::size_t>(j)] = stats.Stats(j, len);
  }

  std::vector<double> profile(static_cast<std::size_t>(n_sub));
  auto finish_row = [&](Index row) {
    const MeanStd row_stats = col_stats[static_cast<std::size_t>(row)];
    for (Index j = 0; j < n_sub; ++j) {
      profile[static_cast<std::size_t>(j)] =
          IsTrivialMatch(row, j, len)
              ? kInf
              : ZNormalizedDistanceFromDotProduct(
                    qt[static_cast<std::size_t>(j)], len, row_stats,
                    col_stats[static_cast<std::size_t>(j)]);
    }
    const Index arg = ArgMin(profile);
    if (arg != kNoNeighbor) {
      result.distances[static_cast<std::size_t>(row)] =
          profile[static_cast<std::size_t>(arg)];
      result.indices[static_cast<std::size_t>(row)] = arg;
    }
    if (observer) observer(row, qt, profile);
  };

  finish_row(0);
  for (Index i = 1; i < n_sub; ++i) {
    if (deadline.Expired()) {
      if (out_dnf != nullptr) *out_dnf = true;
      return result;
    }
    // Update QT in place, descending j so QT[j-1] is still the old row.
    for (Index j = n_sub - 1; j >= 1; --j) {
      qt[static_cast<std::size_t>(j)] =
          qt[static_cast<std::size_t>(j - 1)] -
          series[static_cast<std::size_t>(i - 1)] *
              series[static_cast<std::size_t>(j - 1)] +
          series[static_cast<std::size_t>(i + len - 1)] *
              series[static_cast<std::size_t>(j + len - 1)];
    }
    qt[0] = qt_first[static_cast<std::size_t>(i)];
    finish_row(i);
  }
  return result;
}

MatrixProfile Stomp(std::span<const double> series, Index len) {
  // Center the input (a semantic no-op for z-normalized distances) so this
  // convenience entry point is robust to large data offsets.
  const Series centered = CenterSeries(series);
  const PrefixStats stats(centered);
  return Stomp(centered, stats, len);
}

}  // namespace valmod
