#ifndef VALMOD_MP_MATRIX_PROFILE_H_
#define VALMOD_MP_MATRIX_PROFILE_H_

#include <span>
#include <vector>

#include "util/common.h"

namespace valmod {

/// Sentinel for "no neighbour" in a matrix-profile index.
inline constexpr Index kNoNeighbor = -1;

/// A motif pair: the two closest non-trivially-matching subsequences of a
/// given length (Definition 2.3). `a < b` by convention.
struct MotifPair {
  Index a = kNoNeighbor;
  Index b = kNoNeighbor;
  Index length = 0;
  double distance = kInf;

  /// True when a pair has actually been found.
  bool valid() const { return a != kNoNeighbor && b != kNoNeighbor; }
};

/// The matrix profile of a series for one subsequence length
/// (Definition 2.5): per-offset nearest-neighbour distance plus the
/// matching index vector.
struct MatrixProfile {
  Index subsequence_length = 0;
  /// distances[i]: z-normalized distance from subsequence i to its nearest
  /// non-trivial neighbour.
  std::vector<double> distances;
  /// indices[i]: offset of that neighbour, or kNoNeighbor.
  std::vector<Index> indices;

  Index size() const { return static_cast<Index>(distances.size()); }
};

/// Extracts the motif pair (the two lowest values) from a matrix profile.
/// Returns an invalid pair when the profile is empty or all-infinite.
MotifPair MotifFromProfile(const MatrixProfile& profile);

/// Extracts the top-k motif pairs from a matrix profile, enforcing the
/// exclusion zone between the pairs' occurrences so the k pairs describe k
/// distinct regions (used by the ranked-list view of Definition 2.3).
std::vector<MotifPair> TopMotifsFromProfile(const MatrixProfile& profile,
                                            Index k);

/// The discord (subsequence with the largest nearest-neighbour distance),
/// i.e. the highest point of the matrix profile; part of the paper's
/// future-work extension implemented here.
struct Discord {
  Index offset = kNoNeighbor;
  Index length = 0;
  /// Distance to the discord's nearest neighbour.
  double distance = -1.0;
  bool valid() const { return offset != kNoNeighbor; }
};

/// Extracts the top discord from a matrix profile.
Discord DiscordFromProfile(const MatrixProfile& profile);

}  // namespace valmod

#endif  // VALMOD_MP_MATRIX_PROFILE_H_
