#ifndef VALMOD_MP_STAMP_H_
#define VALMOD_MP_STAMP_H_

#include <functional>
#include <span>

#include "mp/matrix_profile.h"
#include "util/common.h"
#include "util/prefix_stats.h"
#include "util/random.h"

namespace valmod {

/// Options for the anytime STAMP computation.
struct StampOptions {
  /// Randomize the row evaluation order (the anytime property: a random
  /// prefix of rows already approximates the final profile well).
  bool randomize_order = true;
  /// PRNG seed for the row order.
  std::uint64_t seed = 7;
  /// Stop after this many rows (0 = all). With randomized order this yields
  /// the paper's "O(nc) steps converge" anytime behaviour.
  Index max_rows = 0;
  /// Invoked after every `snapshot_every` rows with the number of rows done
  /// and the profile-so-far; 0 disables snapshots.
  Index snapshot_every = 0;
  std::function<void(Index rows_done, const MatrixProfile& so_far)> snapshot;
};

/// STAMP [Yeh et al., ICDM'16]: each distance profile is computed
/// independently with MASS, O(n^2 log n) total, but rows can be evaluated in
/// any order, making it an anytime algorithm. Profile entries are min-merged
/// symmetrically, so after k rows every offset already carries the best
/// distance seen so far.
MatrixProfile Stamp(std::span<const double> series, const PrefixStats& stats,
                    Index len, const StampOptions& options = StampOptions());

}  // namespace valmod

#endif  // VALMOD_MP_STAMP_H_
