#include "mp/parallel_stomp.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "mp/stomp_kernel.h"
#include "obs/trace.h"
#include "signal/sliding_dot.h"
#include "signal/znorm.h"
#include "util/check.h"

namespace valmod {

MatrixProfile ParallelStomp(std::span<const double> series,
                            const PrefixStats& stats, Index len,
                            int threads) {
  const obs::TraceSpan span("parallel_stomp_pass");
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(len >= 2 && n >= len + 1);
  const Index n_sub = NumSubsequences(n, len);
  const Index num_chunks =
      (n_sub + internal::kStompChunkRows - 1) / internal::kStompChunkRows;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = static_cast<int>(std::min<Index>(threads, num_chunks));

  MatrixProfile result;
  result.subsequence_length = len;
  result.distances.assign(static_cast<std::size_t>(n_sub), kInf);
  result.indices.assign(static_cast<std::size_t>(n_sub), kNoNeighbor);

  const std::vector<double> qt_first = SlidingDotProduct(
      series.subspan(0, static_cast<std::size_t>(len)), series);
  std::vector<MeanStd> col_stats(static_cast<std::size_t>(n_sub));
  for (Index j = 0; j < n_sub; ++j) {
    col_stats[static_cast<std::size_t>(j)] = stats.Stats(j, len);
  }

  // Workers pull chunks off the shared grid. The grid itself never depends
  // on the thread count (see stomp_kernel.h), so any `threads` value yields
  // the same floating-point result; the counter only balances load. Relaxed
  // ordering suffices: each chunk's rows are written by exactly one worker
  // and thread join() publishes everything before `result` is read.
  std::atomic<Index> next_chunk{0};
  auto worker = [&]() {
    for (;;) {
      const Index c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const Index begin = c * internal::kStompChunkRows;
      const Index end =
          std::min<Index>(n_sub, begin + internal::kStompChunkRows);
      internal::StompProcessRows(series, col_stats, qt_first, len, begin, end,
                                 result.distances.data(),
                                 result.indices.data(), nullptr, Deadline());
    }
  };

  if (threads <= 1) {
    worker();
    return result;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) workers.emplace_back(worker);
  for (std::thread& w : workers) w.join();
  return result;
}

MatrixProfile ParallelStomp(std::span<const double> series, Index len,
                            int threads) {
  const Series centered = CenterSeries(series);
  const PrefixStats stats(centered);
  return ParallelStomp(centered, stats, len, threads);
}

}  // namespace valmod
