#include "mp/parallel_stomp.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "signal/distance.h"
#include "signal/sliding_dot.h"
#include "signal/znorm.h"
#include "util/check.h"

namespace valmod {
namespace {

/// Processes rows [row_begin, row_end) into the shared result arrays.
/// Each worker owns a disjoint row range, so the writes never race; the
/// symmetric (column-side) improvements STOMP usually exploits are folded
/// into the row scan instead (every pair is visited exactly once per side).
void ProcessChunk(std::span<const double> series,
                  std::span<const MeanStd> col_stats, Index len,
                  Index row_begin, Index row_end, double* distances,
                  Index* indices) {
  const Index n_sub = static_cast<Index>(col_stats.size());
  if (row_begin >= row_end) return;
  std::vector<double> qt = SlidingDotProduct(
      series.subspan(static_cast<std::size_t>(row_begin),
                     static_cast<std::size_t>(len)),
      series);
  for (Index i = row_begin; i < row_end; ++i) {
    if (i > row_begin) {
      for (Index j = n_sub - 1; j >= 1; --j) {
        qt[static_cast<std::size_t>(j)] =
            qt[static_cast<std::size_t>(j - 1)] -
            series[static_cast<std::size_t>(i - 1)] *
                series[static_cast<std::size_t>(j - 1)] +
            series[static_cast<std::size_t>(i + len - 1)] *
                series[static_cast<std::size_t>(j + len - 1)];
      }
      // Column 0 = dot(T_i, T_0) = dot(T_0, T_i): recompute directly; one
      // O(len) product per row is amortized away by the O(n) row cost.
      qt[0] = SubsequenceDotProduct(series, 0, i, len);
    }
    double best = kInf;
    Index best_j = kNoNeighbor;
    const MeanStd row_stats = col_stats[static_cast<std::size_t>(i)];
    for (Index j = 0; j < n_sub; ++j) {
      if (IsTrivialMatch(i, j, len)) continue;
      const double d = ZNormalizedDistanceFromDotProduct(
          qt[static_cast<std::size_t>(j)], len, row_stats,
          col_stats[static_cast<std::size_t>(j)]);
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    distances[i] = best;
    indices[i] = best_j;
  }
}

}  // namespace

MatrixProfile ParallelStomp(std::span<const double> series,
                            const PrefixStats& stats, Index len,
                            int threads) {
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(len >= 2 && n >= len + 1);
  const Index n_sub = NumSubsequences(n, len);
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = static_cast<int>(
      std::min<Index>(threads, std::max<Index>(1, n_sub / 64)));

  MatrixProfile result;
  result.subsequence_length = len;
  result.distances.assign(static_cast<std::size_t>(n_sub), kInf);
  result.indices.assign(static_cast<std::size_t>(n_sub), kNoNeighbor);

  std::vector<MeanStd> col_stats(static_cast<std::size_t>(n_sub));
  for (Index j = 0; j < n_sub; ++j) {
    col_stats[static_cast<std::size_t>(j)] = stats.Stats(j, len);
  }

  if (threads == 1) {
    ProcessChunk(series, col_stats, len, 0, n_sub, result.distances.data(),
                 result.indices.data());
    return result;
  }
  std::vector<std::thread> workers;
  const Index chunk = (n_sub + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    const Index begin = static_cast<Index>(t) * chunk;
    const Index end = std::min<Index>(n_sub, begin + chunk);
    workers.emplace_back(ProcessChunk, series, std::span<const MeanStd>(col_stats),
                         len, begin, end, result.distances.data(),
                         result.indices.data());
  }
  for (std::thread& w : workers) w.join();
  return result;
}

MatrixProfile ParallelStomp(std::span<const double> series, Index len,
                            int threads) {
  const Series centered = CenterSeries(series);
  const PrefixStats stats(centered);
  return ParallelStomp(centered, stats, len, threads);
}

}  // namespace valmod
