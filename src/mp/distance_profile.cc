#include "mp/distance_profile.h"

#include "mp/matrix_profile.h"
#include "mp/simd/simd.h"
#include "signal/distance.h"
#include "signal/sliding_dot.h"
#include "signal/znorm.h"
#include "util/check.h"

namespace valmod {

std::vector<double> DistanceProfileFromDotProducts(
    std::span<const double> qt, const PrefixStats& stats, Index query_offset,
    Index len) {
  const Index n_sub = static_cast<Index>(qt.size());
  const MeanStd q_stats = stats.Stats(query_offset, len);
  std::vector<double> profile(static_cast<std::size_t>(n_sub), kInf);
  // Materialize the column stats once so the row can run through the
  // dispatched kernel; the copy is O(n_sub), same order as the row itself.
  std::vector<MeanStd> col_stats(static_cast<std::size_t>(n_sub));
  for (Index j = 0; j < n_sub; ++j) {
    col_stats[static_cast<std::size_t>(j)] = stats.Stats(j, len);
  }
  const simd::SimdKernels& kernels = simd::CurrentKernels();
  const ColumnRanges ranges = NonTrivialColumnRanges(query_offset, len, n_sub);
  double best = kInf;
  Index best_j = kNoNeighbor;
  kernels.dist_row_min(qt.data(), col_stats.data(), q_stats, len, 0,
                       ranges.left_end, profile.data(), &best, &best_j);
  kernels.dist_row_min(qt.data(), col_stats.data(), q_stats, len,
                       ranges.right_begin, n_sub, profile.data(), &best,
                       &best_j);
  return profile;
}

std::vector<double> ComputeDistanceProfile(std::span<const double> series,
                                           const PrefixStats& stats,
                                           Index query_offset, Index len) {
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(query_offset >= 0 && query_offset + len <= n);
  const std::vector<double> qt = SlidingDotProduct(
      series.subspan(static_cast<std::size_t>(query_offset),
                     static_cast<std::size_t>(len)),
      series);
  return DistanceProfileFromDotProducts(qt, stats, query_offset, len);
}

std::vector<double> ComputeDistanceProfileNaive(std::span<const double> series,
                                                Index query_offset, Index len) {
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(query_offset >= 0 && query_offset + len <= n);
  const Index n_sub = NumSubsequences(n, len);
  const std::vector<double> zq =
      ZNormalizeSubsequence(series, query_offset, len);
  std::vector<double> profile(static_cast<std::size_t>(n_sub), kInf);
  for (Index j = 0; j < n_sub; ++j) {
    if (IsTrivialMatch(query_offset, j, len)) continue;
    const std::vector<double> zj = ZNormalizeSubsequence(series, j, len);
    profile[static_cast<std::size_t>(j)] = EuclideanDistance(zq, zj);
  }
  return profile;
}

Index ArgMin(std::span<const double> profile) {
  Index best = kNoNeighbor;
  double best_value = kInf;
  for (Index j = 0; j < static_cast<Index>(profile.size()); ++j) {
    if (profile[static_cast<std::size_t>(j)] < best_value) {
      best_value = profile[static_cast<std::size_t>(j)];
      best = j;
    }
  }
  return best;
}

}  // namespace valmod
