#include "mp/ab_join.h"

#include <algorithm>
#include <vector>

#include "signal/distance.h"
#include "signal/sliding_dot.h"
#include "signal/znorm.h"
#include "util/check.h"
#include "util/prefix_stats.h"

namespace valmod {

AbJoinProfile AbJoin(std::span<const double> series_a,
                     std::span<const double> series_b, Index len,
                     const Deadline& deadline, bool* out_dnf) {
  const Index na = static_cast<Index>(series_a.size());
  const Index nb = static_cast<Index>(series_b.size());
  VALMOD_CHECK(len >= 2 && na >= len && nb >= len);
  if (out_dnf != nullptr) *out_dnf = false;
  // Center both inputs (see CenterSeries): a semantic no-op that keeps the
  // dot-product formula well conditioned.
  const Series a = CenterSeries(series_a);
  const Series b = CenterSeries(series_b);
  const PrefixStats stats_a(a);
  const PrefixStats stats_b(b);
  const Index n_sub_a = NumSubsequences(na, len);
  const Index n_sub_b = NumSubsequences(nb, len);

  AbJoinProfile result;
  result.subsequence_length = len;
  result.distances.assign(static_cast<std::size_t>(n_sub_a), kInf);
  result.indices.assign(static_cast<std::size_t>(n_sub_a), kNoNeighbor);

  // QT row for A's first subsequence against B (MASS), kept to seed column
  // 0 of later rows via the transposed first row trick: QT[i][0] needs
  // dot(A_i, B_0), which we get from a second MASS of B's first subsequence
  // against A.
  std::vector<double> qt = SlidingDotProduct(
      std::span<const double>(a).subspan(0, static_cast<std::size_t>(len)),
      b);
  const std::vector<double> qt_b0_vs_a = SlidingDotProduct(
      std::span<const double>(b).subspan(0, static_cast<std::size_t>(len)),
      a);

  auto finish_row = [&](Index i) {
    const MeanStd ms_a = stats_a.Stats(i, len);
    double best = kInf;
    Index best_j = kNoNeighbor;
    for (Index j = 0; j < n_sub_b; ++j) {
      const double d = ZNormalizedDistanceFromDotProduct(
          qt[static_cast<std::size_t>(j)], len, ms_a, stats_b.Stats(j, len));
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    result.distances[static_cast<std::size_t>(i)] = best;
    result.indices[static_cast<std::size_t>(i)] = best_j;
  };

  finish_row(0);
  for (Index i = 1; i < n_sub_a; ++i) {
    if (deadline.Expired()) {
      if (out_dnf != nullptr) *out_dnf = true;
      return result;
    }
    for (Index j = n_sub_b - 1; j >= 1; --j) {
      qt[static_cast<std::size_t>(j)] =
          qt[static_cast<std::size_t>(j - 1)] -
          a[static_cast<std::size_t>(i - 1)] *
              b[static_cast<std::size_t>(j - 1)] +
          a[static_cast<std::size_t>(i + len - 1)] *
              b[static_cast<std::size_t>(j + len - 1)];
    }
    qt[0] = qt_b0_vs_a[static_cast<std::size_t>(i)];
    finish_row(i);
  }
  return result;
}

MotifPair AbJoinMotif(const AbJoinProfile& profile) {
  MotifPair best;
  best.length = profile.subsequence_length;
  for (Index i = 0; i < profile.size(); ++i) {
    const double d = profile.distances[static_cast<std::size_t>(i)];
    const Index j = profile.indices[static_cast<std::size_t>(i)];
    if (j == kNoNeighbor) continue;
    if (d < best.distance) {
      best.distance = d;
      best.a = i;  // Offset in A.
      best.b = j;  // Offset in B (no canonical ordering across series).
    }
  }
  return best;
}

AbJoinProfile AbJoinNaive(std::span<const double> series_a,
                          std::span<const double> series_b, Index len) {
  const Index n_sub_a =
      NumSubsequences(static_cast<Index>(series_a.size()), len);
  const Index n_sub_b =
      NumSubsequences(static_cast<Index>(series_b.size()), len);
  VALMOD_CHECK(n_sub_a >= 1 && n_sub_b >= 1);
  AbJoinProfile result;
  result.subsequence_length = len;
  result.distances.assign(static_cast<std::size_t>(n_sub_a), kInf);
  result.indices.assign(static_cast<std::size_t>(n_sub_a), kNoNeighbor);
  for (Index i = 0; i < n_sub_a; ++i) {
    const std::vector<double> za = ZNormalizeSubsequence(series_a, i, len);
    for (Index j = 0; j < n_sub_b; ++j) {
      const std::vector<double> zb = ZNormalizeSubsequence(series_b, j, len);
      const double d = EuclideanDistance(za, zb);
      if (d < result.distances[static_cast<std::size_t>(i)]) {
        result.distances[static_cast<std::size_t>(i)] = d;
        result.indices[static_cast<std::size_t>(i)] = j;
      }
    }
  }
  return result;
}

}  // namespace valmod
