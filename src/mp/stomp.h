#ifndef VALMOD_MP_STOMP_H_
#define VALMOD_MP_STOMP_H_

#include <functional>
#include <span>

#include "mp/matrix_profile.h"
#include "util/common.h"
#include "util/prefix_stats.h"
#include "util/timer.h"

namespace valmod {

/// Per-row observer invoked by Stomp after each distance profile is
/// completed. `row` is the query offset, `qt` the dot-product row (already
/// advanced to this row), `profile` the finished distance profile (kInf in
/// the exclusion zone). VALMOD's ComputeMatrixProfile hooks in here to
/// harvest lower-bound entries without duplicating the STOMP kernel.
using StompRowObserver = std::function<void(
    Index row, std::span<const double> qt, std::span<const double> profile)>;

/// STOMP [Zhu et al., ICDM'16]: the exact O(n^2) matrix profile via
/// incrementally updated dot products. The first row is computed with MASS
/// (O(n log n)); every following row is derived from the previous one in
/// O(n).
///
/// `deadline` aborts the computation (profile distances already computed
/// stay valid, the rest are kInf, and `*out_dnf` is set when provided).
MatrixProfile Stomp(std::span<const double> series, const PrefixStats& stats,
                    Index len, const StompRowObserver& observer = nullptr,
                    const Deadline& deadline = Deadline(),
                    bool* out_dnf = nullptr);

/// Convenience overload that builds the PrefixStats internally.
MatrixProfile Stomp(std::span<const double> series, Index len);

}  // namespace valmod

#endif  // VALMOD_MP_STOMP_H_
