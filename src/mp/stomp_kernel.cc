#include "mp/stomp_kernel.h"

#include <vector>

#include "mp/matrix_profile.h"
#include "mp/simd/simd.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "signal/sliding_dot.h"

namespace valmod {
namespace internal {

bool StompProcessRows(std::span<const double> series,
                      std::span<const MeanStd> col_stats,
                      std::span<const double> qt_first, Index len,
                      Index row_begin, Index row_end, double* distances,
                      Index* indices, const StompRowObserver& observer,
                      const Deadline& deadline) {
  const Index n_sub = static_cast<Index>(col_stats.size());
  if (row_begin >= row_end) return true;
  const obs::TraceSpan span("stomp_row_chunk");
  obs::Counters::RecordStompChunk(row_end - row_begin);
  const simd::SimdKernels& kernels = simd::CurrentKernels();
  std::vector<double> qt = SlidingDotProduct(
      series.subspan(static_cast<std::size_t>(row_begin),
                     static_cast<std::size_t>(len)),
      series);
  // The full profile row is only materialized when someone watches it; the
  // plain matrix-profile path tracks the minimum inline.
  std::vector<double> profile;
  if (observer) profile.resize(static_cast<std::size_t>(n_sub));

  for (Index i = row_begin; i < row_end; ++i) {
    if (deadline.Expired()) return false;
    if (i > row_begin) {
      // Update QT in place; the kernel walks descending j so QT[j-1] is
      // still the old row, and restores column 0 from the first-row MASS
      // pass (QT[i][0] == QT[0][i] by symmetry).
      kernels.qt_update(series.data(), i, len, n_sub, qt.data(), qt.data());
      qt[0] = qt_first[static_cast<std::size_t>(i)];
    }
    const MeanStd row_stats = col_stats[static_cast<std::size_t>(i)];
    const ColumnRanges ranges = NonTrivialColumnRanges(i, len, n_sub);
    double best = kInf;
    Index best_j = kNoNeighbor;
    double* profile_out = observer ? profile.data() : nullptr;
    if (observer) {
      // The exclusion zone shows up as kInf in the materialized row.
      for (Index j = ranges.left_end; j < ranges.right_begin; ++j) {
        profile[static_cast<std::size_t>(j)] = kInf;
      }
    }
    kernels.dist_row_min(qt.data(), col_stats.data(), row_stats, len, 0,
                         ranges.left_end, profile_out, &best, &best_j);
    kernels.dist_row_min(qt.data(), col_stats.data(), row_stats, len,
                         ranges.right_begin, n_sub, profile_out, &best,
                         &best_j);
    distances[i] = best;
    indices[i] = best_j;
    if (observer) observer(i, qt, profile);
  }
  return true;
}

}  // namespace internal
}  // namespace valmod
