#include "mp/stomp_kernel.h"

#include <vector>

#include "mp/distance_profile.h"
#include "mp/matrix_profile.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "signal/distance.h"
#include "signal/sliding_dot.h"

namespace valmod {
namespace internal {

bool StompProcessRows(std::span<const double> series,
                      std::span<const MeanStd> col_stats,
                      std::span<const double> qt_first, Index len,
                      Index row_begin, Index row_end, double* distances,
                      Index* indices, const StompRowObserver& observer,
                      const Deadline& deadline) {
  const Index n_sub = static_cast<Index>(col_stats.size());
  if (row_begin >= row_end) return true;
  const obs::TraceSpan span("stomp_row_chunk");
  obs::Counters::RecordStompChunk(row_end - row_begin);
  std::vector<double> qt = SlidingDotProduct(
      series.subspan(static_cast<std::size_t>(row_begin),
                     static_cast<std::size_t>(len)),
      series);
  // The full profile row is only materialized when someone watches it; the
  // plain matrix-profile path tracks the minimum inline.
  std::vector<double> profile;
  if (observer) profile.resize(static_cast<std::size_t>(n_sub));

  for (Index i = row_begin; i < row_end; ++i) {
    if (deadline.Expired()) return false;
    if (i > row_begin) {
      // Update QT in place, descending j so QT[j-1] is still the old row.
      for (Index j = n_sub - 1; j >= 1; --j) {
        qt[static_cast<std::size_t>(j)] =
            qt[static_cast<std::size_t>(j - 1)] -
            series[static_cast<std::size_t>(i - 1)] *
                series[static_cast<std::size_t>(j - 1)] +
            series[static_cast<std::size_t>(i + len - 1)] *
                series[static_cast<std::size_t>(j + len - 1)];
      }
      qt[0] = qt_first[static_cast<std::size_t>(i)];
    }
    const MeanStd row_stats = col_stats[static_cast<std::size_t>(i)];
    double best = kInf;
    Index best_j = kNoNeighbor;
    if (observer) {
      for (Index j = 0; j < n_sub; ++j) {
        profile[static_cast<std::size_t>(j)] =
            IsTrivialMatch(i, j, len)
                ? kInf
                : ZNormalizedDistanceFromDotProduct(
                      qt[static_cast<std::size_t>(j)], len, row_stats,
                      col_stats[static_cast<std::size_t>(j)]);
      }
      const Index arg = ArgMin(profile);
      if (arg != kNoNeighbor) {
        best = profile[static_cast<std::size_t>(arg)];
        best_j = arg;
      }
    } else {
      for (Index j = 0; j < n_sub; ++j) {
        if (IsTrivialMatch(i, j, len)) continue;
        const double d = ZNormalizedDistanceFromDotProduct(
            qt[static_cast<std::size_t>(j)], len, row_stats,
            col_stats[static_cast<std::size_t>(j)]);
        if (d < best) {
          best = d;
          best_j = j;
        }
      }
    }
    distances[i] = best;
    indices[i] = best_j;
    if (observer) observer(i, qt, profile);
  }
  return true;
}

}  // namespace internal
}  // namespace valmod
