#ifndef VALMOD_MP_DISTANCE_PROFILE_H_
#define VALMOD_MP_DISTANCE_PROFILE_H_

#include <span>
#include <vector>

#include "util/common.h"
#include "util/prefix_stats.h"

namespace valmod {

/// Computes the distance profile of the subsequence at `query_offset`
/// against every subsequence of `series` of the same length
/// (Definition 2.4). Entries in the trivial-match exclusion zone are kInf.
/// O(n log n) via MASS (FFT sliding dot product).
std::vector<double> ComputeDistanceProfile(std::span<const double> series,
                                           const PrefixStats& stats,
                                           Index query_offset, Index len);

/// Same result computed the naive O(n * len) way; the test oracle.
std::vector<double> ComputeDistanceProfileNaive(std::span<const double> series,
                                                Index query_offset, Index len);

/// Converts a raw sliding-dot-product row into a distance profile using
/// Eq. 3, applying the exclusion zone around `query_offset`. `qt` must have
/// NumSubsequences(n, len) entries. Shared by STOMP and the VALMOD fallback
/// path so the trivial-match policy lives in exactly one place.
std::vector<double> DistanceProfileFromDotProducts(
    std::span<const double> qt, const PrefixStats& stats, Index query_offset,
    Index len);

/// Index of the minimum entry of `profile`, or kNoNeighbor if all are kInf.
Index ArgMin(std::span<const double> profile);

}  // namespace valmod

#endif  // VALMOD_MP_DISTANCE_PROFILE_H_
