#include "mp/simd/simd.h"

#include <atomic>
#include <cstdlib>

namespace valmod {
namespace simd {
namespace {

// Active kernel table. Null until first use; CurrentKernels publishes the
// resolved table with release semantics so concurrent first callers either
// resolve it themselves (to the same value) or read the published pointer.
std::atomic<const SimdKernels*> g_active{nullptr};

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel DetectedSimdLevel() {
  return internal::Avx2KernelsOrNull() != nullptr ? SimdLevel::kAvx2
                                                  : SimdLevel::kScalar;
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel kLevel = [] {
    const char* force = std::getenv("VALMOD_FORCE_SCALAR");
    if (force != nullptr && force[0] == '1' && force[1] == '\0') {
      return SimdLevel::kScalar;
    }
    return DetectedSimdLevel();
  }();
  return kLevel;
}

const SimdKernels& KernelsFor(SimdLevel level) {
  if (level == SimdLevel::kAvx2) {
    const SimdKernels* avx2 = internal::Avx2KernelsOrNull();
    if (avx2 != nullptr) return *avx2;
  }
  return internal::ScalarKernels();
}

const SimdKernels& CurrentKernels() {
  const SimdKernels* kernels = g_active.load(std::memory_order_acquire);
  if (kernels == nullptr) {
    kernels = &KernelsFor(ActiveSimdLevel());
    g_active.store(kernels, std::memory_order_release);
  }
  return *kernels;
}

ScopedKernelOverride::ScopedKernelOverride(SimdLevel level)
    : previous_(g_active.exchange(&KernelsFor(level),
                                  std::memory_order_acq_rel)) {}

ScopedKernelOverride::~ScopedKernelOverride() {
  g_active.store(previous_, std::memory_order_release);
}

}  // namespace simd
}  // namespace valmod
