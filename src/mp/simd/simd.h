#ifndef VALMOD_MP_SIMD_SIMD_H_
#define VALMOD_MP_SIMD_SIMD_H_

#include "util/common.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace simd {

/// Instruction-set tiers the hot kernels are compiled for. The tier is
/// picked once at startup (CPUID + the VALMOD_FORCE_SCALAR=1 environment
/// override + the VALMOD_SIMD CMake option) and stays fixed for the process,
/// so every profile a run produces comes from one code path.
///
/// Determinism contract (carried over from the PR-1 chunk-grid work):
///  * For a given tier, output is bit-identical across thread counts — the
///    kernels are pure per-row functions and the lane width is fixed.
///  * The AVX2 tier mirrors the scalar op sequence with 4-wide exactly
///    rounded IEEE ops (mul/sub/div/sqrt, no FMA contraction), so its
///    distances are bit-identical to the scalar tier as well; the
///    property-based differential suite asserts this on every generated
///    case (tests/property/).
enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
};

/// Human-readable tier name ("scalar", "avx2"); logged by benches and
/// examples so every recorded number names the code path that produced it.
const char* SimdLevelName(SimdLevel level);

/// The dispatch table of hot kernels. All pointers are always non-null.
/// Raw pointers + counts (rather than spans) keep the kernel ABI trivial;
/// every function is a pure elementwise/row primitive safe to call from any
/// thread on disjoint outputs.
struct SimdKernels {
  /// Tier this table implements.
  SimdLevel level = SimdLevel::kScalar;

  /// STOMP dot-product recurrence (Algorithm 3): for j in [1, n_sub),
  /// qt_out[j] = qt_prev[j-1] - series[row-1]*series[j-1]
  ///                          + series[row+len-1]*series[j+len-1].
  /// qt_out[0] is left untouched (callers restore it from the precomputed
  /// first row or an O(len) dot product). Alias-safe for qt_out == qt_prev:
  /// the update walks descending, so each read of qt_prev[j-1] happens
  /// before the write to qt_out[j-1].
  void (*qt_update)(const double* series, Index row, Index len, Index n_sub,
                    const double* qt_prev, double* qt_out);

  /// Distance-row kernel with column-min tracking: for j in [begin, end),
  /// d = z-normalized distance from qt[j] (Eq. 3 with the flat-window
  /// conventions of signal/distance.h); writes d to profile[j] when
  /// `profile` is non-null; updates (*best, *best_j) under strict less-than
  /// so the lowest index wins ties, exactly like a sequential scan. The
  /// exclusion zone is the caller's job (NonTrivialColumnRanges).
  void (*dist_row_min)(const double* qt, const MeanStd* col_stats,
                       MeanStd row_stats, Index len, Index begin, Index end,
                       double* profile, double* best, Index* best_j);

  /// Streaming variant of dist_row_min: additionally min-updates the stored
  /// profile (distances[j], indices[j] <- d, row when d < distances[j]),
  /// which is the "new subsequence improves old entries" half of the
  /// STAMPI-style append (stream/streaming_profile.cc).
  void (*dist_row_min_update)(const double* qt, const MeanStd* col_stats,
                              MeanStd row_stats, Index len, Index row,
                              Index begin, Index end, double* distances,
                              Index* indices, double* best, Index* best_j);

  /// Batch Eq. 2 base-term evaluation over one distance row (the inner loop
  /// of HarvestProfile, O(n^2) per matrix-profile pass): for each j,
  /// q = 1 - d^2/(2*len) and base_sq[j] = q <= 0 ? len : len*(1 - q^2).
  /// kInf distances (trivial matches) yield base_sq = len; callers skip
  /// them by checking dist_row, exactly like the scalar loop always did.
  void (*lb_base_sq_row)(const double* dist_row, Index n, Index len,
                         double* base_sq);

  /// Batch Eq. 2 bound at a target length: out[j] = lb_base[j] *
  /// (sigma_base / sigma_now), or 0 when sigma_now is below the flat-window
  /// floor (LowerBoundAtLength applied elementwise).
  void (*lb_at_length)(const double* lb_base, Index n, double sigma_base,
                       double sigma_now, double* out);

  /// Naive sliding dot product (the short-query path of MASS):
  /// out[j] = dot(query, series[j .. j+m)) for j in [0, n - m]. Accumulates
  /// in query order per output, so results are bit-identical to the scalar
  /// inner loop.
  void (*sliding_dot)(const double* query, Index m, const double* series,
                      Index n, double* out);

  /// Elementwise z-normalization: out[i] = (values[i] - mean) / std.
  void (*znormalize)(const double* values, Index n, double mean, double std,
                     double* out);
};

/// The tier the hardware (and the build) supports, ignoring overrides:
/// kAvx2 when the binary carries AVX2 kernels and CPUID reports AVX2+FMA,
/// else kScalar.
SimdLevel DetectedSimdLevel();

/// The tier selected for this process: DetectedSimdLevel() unless the
/// VALMOD_FORCE_SCALAR=1 environment variable pins it to kScalar. Computed
/// once; the environment is read on first use.
SimdLevel ActiveSimdLevel();

/// Kernel table for an explicit tier. Requesting kAvx2 on a build or host
/// without AVX2 support returns the scalar table.
const SimdKernels& KernelsFor(SimdLevel level);

/// The process-wide active kernel table. One atomic pointer load; call
/// sites hoist the reference out of their row loops.
const SimdKernels& CurrentKernels();

/// Temporarily pins the active kernel table to `level` and restores the
/// previous table on destruction. For differential tests and benchmarks
/// that compare tiers inside one process. Not safe to construct while
/// kernels are executing on other threads; use from test/bench setup only.
class ScopedKernelOverride {
 public:
  /// Pins the table; remembers what to restore.
  explicit ScopedKernelOverride(SimdLevel level);
  ~ScopedKernelOverride();

  ScopedKernelOverride(const ScopedKernelOverride&) = delete;
  ScopedKernelOverride& operator=(const ScopedKernelOverride&) = delete;

 private:
  const SimdKernels* previous_;
};

namespace internal {

/// The AVX2 table, or nullptr when this binary was built without AVX2
/// kernels (VALMOD_SIMD=OFF or a non-x86 target) or the CPU lacks
/// AVX2/FMA. Defined in kernels_avx2.cc; everything else dispatches
/// through KernelsFor/CurrentKernels.
const SimdKernels* Avx2KernelsOrNull();

/// The scalar reference table (always available).
const SimdKernels& ScalarKernels();

}  // namespace internal
}  // namespace simd
}  // namespace valmod

#endif  // VALMOD_MP_SIMD_SIMD_H_
