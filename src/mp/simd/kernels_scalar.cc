#include "mp/simd/simd.h"

#include "mp/simd/kernels_detail.h"

// Scalar reference kernels. These are the exact loops the pre-SIMD code ran
// inline at the call sites (stomp_kernel.cc, streaming_profile.cc,
// list_dp.cc, lower_bound.cc, sliding_dot.cc, znorm.cc), lifted behind the
// dispatch table; VALMOD_FORCE_SCALAR=1 output is bitwise-identical to the
// historical scalar implementation because this *is* that implementation.

namespace valmod {
namespace simd {
namespace {

void QtUpdateScalar(const double* series, Index row, Index len, Index n_sub,
                    const double* qt_prev, double* qt_out) {
  const double a = series[static_cast<std::size_t>(row - 1)];
  const double b = series[static_cast<std::size_t>(row + len - 1)];
  // Descending j keeps the in-place (qt_out == qt_prev) update reading the
  // previous row: qt_prev[j-1] is consumed before qt_out[j-1] is written.
  for (Index j = n_sub - 1; j >= 1; --j) {
    qt_out[static_cast<std::size_t>(j)] = internal::QtStep(
        qt_prev[static_cast<std::size_t>(j - 1)], a,
        series[static_cast<std::size_t>(j - 1)], b,
        series[static_cast<std::size_t>(j + len - 1)]);
  }
}

void DistRowMinScalar(const double* qt, const MeanStd* col_stats,
                      MeanStd row_stats, Index len, Index begin, Index end,
                      double* profile, double* best, Index* best_j) {
  const double l = static_cast<double>(len);
  for (Index j = begin; j < end; ++j) {
    const std::size_t k = static_cast<std::size_t>(j);
    const double d = internal::DistanceFromQt(qt[k], l, row_stats,
                                              col_stats[k]);
    if (profile != nullptr) profile[k] = d;
    if (d < *best) {
      *best = d;
      *best_j = j;
    }
  }
}

void DistRowMinUpdateScalar(const double* qt, const MeanStd* col_stats,
                            MeanStd row_stats, Index len, Index row,
                            Index begin, Index end, double* distances,
                            Index* indices, double* best, Index* best_j) {
  const double l = static_cast<double>(len);
  for (Index j = begin; j < end; ++j) {
    const std::size_t k = static_cast<std::size_t>(j);
    const double d = internal::DistanceFromQt(qt[k], l, row_stats,
                                              col_stats[k]);
    if (d < *best) {
      *best = d;
      *best_j = j;
    }
    if (d < distances[k]) {
      distances[k] = d;
      indices[k] = row;
    }
  }
}

void LbBaseSqRowScalar(const double* dist_row, Index n, Index len,
                       double* base_sq) {
  const double l = static_cast<double>(len);
  const double two_l = 2.0 * l;
  for (Index j = 0; j < n; ++j) {
    base_sq[static_cast<std::size_t>(j)] = internal::LbBaseSqFromDistance(
        dist_row[static_cast<std::size_t>(j)], l, two_l);
  }
}

void LbAtLengthScalar(const double* lb_base, Index n, double sigma_base,
                      double sigma_now, double* out) {
  if (sigma_now < kFlatStdEpsilon) {
    for (Index j = 0; j < n; ++j) out[static_cast<std::size_t>(j)] = 0.0;
    return;
  }
  const double ratio = sigma_base / sigma_now;
  for (Index j = 0; j < n; ++j) {
    out[static_cast<std::size_t>(j)] =
        lb_base[static_cast<std::size_t>(j)] * ratio;
  }
}

void SlidingDotScalar(const double* query, Index m, const double* series,
                      Index n, double* out) {
  for (Index j = 0; j + m <= n; ++j) {
    double acc = 0.0;
    for (Index k = 0; k < m; ++k) {
      acc += query[static_cast<std::size_t>(k)] *
             series[static_cast<std::size_t>(j + k)];
    }
    out[static_cast<std::size_t>(j)] = acc;
  }
}

void ZNormalizeScalar(const double* values, Index n, double mean, double std,
                      double* out) {
  for (Index i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] =
        (values[static_cast<std::size_t>(i)] - mean) / std;
  }
}

}  // namespace

namespace internal {

const SimdKernels& ScalarKernels() {
  static const SimdKernels kTable = [] {
    SimdKernels t;
    t.level = SimdLevel::kScalar;
    t.qt_update = &QtUpdateScalar;
    t.dist_row_min = &DistRowMinScalar;
    t.dist_row_min_update = &DistRowMinUpdateScalar;
    t.lb_base_sq_row = &LbBaseSqRowScalar;
    t.lb_at_length = &LbAtLengthScalar;
    t.sliding_dot = &SlidingDotScalar;
    t.znormalize = &ZNormalizeScalar;
    return t;
  }();
  return kTable;
}

}  // namespace internal
}  // namespace simd
}  // namespace valmod
