#include "mp/simd/simd.h"

#include "mp/simd/kernels_detail.h"

// AVX2 kernel table. Compiled with -mavx2 -mfma -ffp-contract=off (see
// CMakeLists.txt); everything outside the VALMOD_SIMD_AVX2 guard must build
// for the baseline target too, so the guard wraps the whole implementation.
//
// Bit-identity with the scalar table is a hard requirement (the property
// suite asserts it case by case), and it falls out of three facts:
//  1. Every arithmetic step mirrors the scalar op sequence with the exactly
//     rounded IEEE vector ops mul/sub/add/div/sqrt — FMA is never emitted
//     (no fma intrinsics; -ffp-contract=off stops the compiler contracting
//     the scalar heads/tails in this TU).
//  2. The predicate ops match scalar semantics: _CMP_LT_OQ/_CMP_LE_OQ are
//     false on NaN exactly like the < / <= they replace, and vminpd/vmaxpd
//     return the *second* operand on NaN or equality, which makes
//     min(1, raw) / max(-1, x) / max(v, 0) reproduce std::clamp and
//     std::max including their NaN pass-through and bound priority.
//  3. Column-min tracking keeps per-lane minima under strict less-than and
//     reduces lanes lexicographically by (value, index), which equals the
//     scalar ascending first-strict-min scan, ties included.

#if defined(VALMOD_SIMD_AVX2)

#include <immintrin.h>

namespace valmod {
namespace simd {
namespace {

/// Deinterleaves four consecutive MeanStd records (AoS, 16 bytes each) into
/// a means vector and a stds vector in natural j order.
inline void LoadStats4(const MeanStd* stats, Index j, __m256d* means,
                       __m256d* stds) {
  // v01 = [m0 s0 m1 s1], v23 = [m2 s2 m3 s3]
  const __m256d v01 = _mm256_loadu_pd(&stats[static_cast<std::size_t>(j)].mean);
  const __m256d v23 =
      _mm256_loadu_pd(&stats[static_cast<std::size_t>(j + 2)].mean);
  // unpacklo -> [m0 m2 m1 m3]; permute(0xD8) picks lanes 0,2,1,3 -> natural.
  *means = _mm256_permute4x64_pd(_mm256_unpacklo_pd(v01, v23), 0xD8);
  *stds = _mm256_permute4x64_pd(_mm256_unpackhi_pd(v01, v23), 0xD8);
}

/// Vector IsFlatWindow (signal/znorm.h): std^2 <= rel^2 * (mean^2 + std^2)
/// + 1e-26, evaluated with the same association as the scalar expression.
inline __m256d FlatMask4(__m256d mean, __m256d std) {
  const __m256d std_sq = _mm256_mul_pd(std, std);
  const __m256d rms_sq = _mm256_add_pd(_mm256_mul_pd(mean, mean), std_sq);
  const __m256d rhs = _mm256_add_pd(
      _mm256_mul_pd(_mm256_set1_pd(kFlatRelEpsilon * kFlatRelEpsilon), rms_sq),
      _mm256_set1_pd(1e-26));
  return _mm256_cmp_pd(std_sq, rhs, _CMP_LE_OQ);
}

/// Row-invariant broadcast state for the distance kernels. The row's
/// IsFlatWindow result travels separately, as the kRowFlat template
/// parameter of Distance4.
struct RowConstants {
  __m256d l_mean;  // l * row.mean
  __m256d l_std;   // l * row.std
  __m256d two_l;   // 2 * l
};

inline RowConstants MakeRowConstants(double l, const MeanStd& row_stats) {
  RowConstants rc;
  rc.l_mean = _mm256_set1_pd(l * row_stats.mean);
  rc.l_std = _mm256_set1_pd(l * row_stats.std);
  rc.two_l = _mm256_set1_pd(2.0 * l);
  return rc;
}

/// Four Eq. 3 distances from four dot products; mirrors
/// internal::DistanceFromQt lane by lane. kRowFlat is the row window's
/// IsFlatWindow result, lifted to a template parameter so the common
/// non-flat-row path skips the row-side mask combining entirely (the result
/// is identical: with row_flat = 0, any_flat == col_flat and both_flat is
/// never taken).
template <bool kRowFlat>
inline __m256d Distance4(__m256d qt, const RowConstants& rc, __m256d col_mean,
                         __m256d col_std) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d neg_one = _mm256_set1_pd(-1.0);
  // corr = (qt - (l*a.mean)*b.mean) / ((l*a.std)*b.std)
  const __m256d num = _mm256_sub_pd(qt, _mm256_mul_pd(rc.l_mean, col_mean));
  const __m256d den = _mm256_mul_pd(rc.l_std, col_std);
  const __m256d raw = _mm256_div_pd(num, den);
  // std::clamp(raw, -1, 1) via min/max: vminpd(1, raw) is `1 < raw ? 1 :
  // raw` and vmaxpd(-1, x) is `x < -1 ? -1 : x` — both return the second
  // operand on NaN or equality, so NaN passes through and the lo bound wins,
  // exactly like the scalar two-comparison clamp.
  __m256d corr = _mm256_max_pd(neg_one, _mm256_min_pd(one, raw));
  // Flat-window overrides: one flat -> 0.5, both flat -> 1.0.
  const __m256d col_flat = FlatMask4(col_mean, col_std);
  if constexpr (kRowFlat) {
    // Row flat: every lane is at least "one flat" (0.5); flat columns are
    // "both flat" (1.0).
    corr = _mm256_blendv_pd(_mm256_set1_pd(0.5), one, col_flat);
  } else {
    corr = _mm256_blendv_pd(corr, _mm256_set1_pd(0.5), col_flat);
  }
  // d = sqrt(max(0, (2l)*(1-corr))); max operand order gives std::max(0., v)
  // NaN/-0.0 behavior (vmaxpd returns the second operand in those cases).
  const __m256d v = _mm256_mul_pd(rc.two_l, _mm256_sub_pd(one, corr));
  return _mm256_sqrt_pd(_mm256_max_pd(v, _mm256_setzero_pd()));
}

/// Per-lane running minima for column-min tracking.
struct LaneMin {
  __m256d value;
  __m256i index;
};

inline LaneMin MakeLaneMin(double best, Index best_j) {
  return {_mm256_set1_pd(best), _mm256_set1_epi64x(best_j)};
}

inline void UpdateLaneMin(LaneMin* lanes, __m256d d, __m256i jv) {
  const __m256d lt = _mm256_cmp_pd(d, lanes->value, _CMP_LT_OQ);
  lanes->value = _mm256_blendv_pd(lanes->value, d, lt);
  lanes->index = _mm256_castpd_si256(_mm256_blendv_pd(
      _mm256_castsi256_pd(lanes->index), _mm256_castsi256_pd(jv), lt));
}

/// Lexicographic (value, index) reduce over the four lanes, folded into the
/// caller's running best. Equal values keep the smaller index, so ties
/// resolve exactly like the scalar ascending scan.
inline void ReduceLaneMin(const LaneMin& lanes, double* best, Index* best_j) {
  alignas(32) double values[4];
  alignas(32) long long indices[4];
  _mm256_store_pd(values, lanes.value);
  _mm256_store_si256(reinterpret_cast<__m256i*>(indices), lanes.index);
  for (int lane = 0; lane < 4; ++lane) {
    const double v = values[lane];
    const Index idx = static_cast<Index>(indices[lane]);
    if (v < *best || (v == *best && idx < *best_j)) {
      *best = v;
      *best_j = idx;
    }
  }
}

void QtUpdateAvx2(const double* series, Index row, Index len, Index n_sub,
                  const double* qt_prev, double* qt_out) {
  const double a = series[static_cast<std::size_t>(row - 1)];
  const double b = series[static_cast<std::size_t>(row + len - 1)];
  const __m256d av = _mm256_set1_pd(a);
  const __m256d bv = _mm256_set1_pd(b);
  Index j = n_sub - 1;
  // Descending blocks keep the in-place update alias-safe: block [jb, jb+3]
  // reads qt_prev[jb-1 .. jb+2], all below every index written so far, and
  // loads happen before the block's own store.
  for (; j - 3 >= 1; j -= 4) {
    const Index jb = j - 3;
    const __m256d prev =
        _mm256_loadu_pd(qt_prev + static_cast<std::size_t>(jb - 1));
    const __m256d s1 =
        _mm256_loadu_pd(series + static_cast<std::size_t>(jb - 1));
    const __m256d s2 =
        _mm256_loadu_pd(series + static_cast<std::size_t>(jb + len - 1));
    const __m256d t = _mm256_add_pd(_mm256_sub_pd(prev, _mm256_mul_pd(av, s1)),
                                    _mm256_mul_pd(bv, s2));
    _mm256_storeu_pd(qt_out + static_cast<std::size_t>(jb), t);
  }
  for (; j >= 1; --j) {
    qt_out[static_cast<std::size_t>(j)] = internal::QtStep(
        qt_prev[static_cast<std::size_t>(j - 1)], a,
        series[static_cast<std::size_t>(j - 1)], b,
        series[static_cast<std::size_t>(j + len - 1)]);
  }
}

template <bool kRowFlat>
void DistRowMinBody(const double* qt, const MeanStd* col_stats,
                    MeanStd row_stats, Index len, Index begin, Index end,
                    double* profile, double* best, Index* best_j) {
  const double l = static_cast<double>(len);
  const RowConstants rc = MakeRowConstants(l, row_stats);
  LaneMin lanes = MakeLaneMin(*best, *best_j);
  Index j = begin;
  __m256i jv = _mm256_set_epi64x(begin + 3, begin + 2, begin + 1, begin);
  const __m256i four = _mm256_set1_epi64x(4);
  const __m256i eight = _mm256_set1_epi64x(8);
  // 8-wide unroll with a second min accumulator: the two Distance4 chains
  // (each serialized through vdivpd -> vsqrtpd) overlap, and the per-lane
  // min updates no longer share one dependency chain. Bit-identity is
  // untouched — every element sees the exact same op sequence, and the
  // lexicographic (value, index) reduce over both accumulators equals the
  // scalar ascending first-strict-min scan.
  LaneMin lanes_hi = MakeLaneMin(*best, *best_j);
  __m256i jv_hi = _mm256_add_epi64(jv, four);
  for (; j + 8 <= end; j += 8) {
    __m256d means, stds, means_hi, stds_hi;
    LoadStats4(col_stats, j, &means, &stds);
    LoadStats4(col_stats, j + 4, &means_hi, &stds_hi);
    const __m256d qtv = _mm256_loadu_pd(qt + static_cast<std::size_t>(j));
    const __m256d qtv_hi =
        _mm256_loadu_pd(qt + static_cast<std::size_t>(j + 4));
    const __m256d d = Distance4<kRowFlat>(qtv, rc, means, stds);
    const __m256d d_hi = Distance4<kRowFlat>(qtv_hi, rc, means_hi, stds_hi);
    if (profile != nullptr) {
      _mm256_storeu_pd(profile + static_cast<std::size_t>(j), d);
      _mm256_storeu_pd(profile + static_cast<std::size_t>(j + 4), d_hi);
    }
    UpdateLaneMin(&lanes, d, jv);
    UpdateLaneMin(&lanes_hi, d_hi, jv_hi);
    jv = _mm256_add_epi64(jv, eight);
    jv_hi = _mm256_add_epi64(jv_hi, eight);
  }
  for (; j + 4 <= end; j += 4) {
    __m256d means, stds;
    LoadStats4(col_stats, j, &means, &stds);
    const __m256d qtv = _mm256_loadu_pd(qt + static_cast<std::size_t>(j));
    const __m256d d = Distance4<kRowFlat>(qtv, rc, means, stds);
    if (profile != nullptr) {
      _mm256_storeu_pd(profile + static_cast<std::size_t>(j), d);
    }
    UpdateLaneMin(&lanes, d, jv);
    jv = _mm256_add_epi64(jv, four);
  }
  ReduceLaneMin(lanes, best, best_j);
  ReduceLaneMin(lanes_hi, best, best_j);
  for (; j < end; ++j) {
    const std::size_t k = static_cast<std::size_t>(j);
    const double d = internal::DistanceFromQt(qt[k], l, row_stats,
                                              col_stats[k]);
    if (profile != nullptr) profile[k] = d;
    if (d < *best) {
      *best = d;
      *best_j = j;
    }
  }
}

void DistRowMinAvx2(const double* qt, const MeanStd* col_stats,
                    MeanStd row_stats, Index len, Index begin, Index end,
                    double* profile, double* best, Index* best_j) {
  if (IsFlatWindow(row_stats.mean, row_stats.std)) {
    DistRowMinBody<true>(qt, col_stats, row_stats, len, begin, end, profile,
                         best, best_j);
  } else {
    DistRowMinBody<false>(qt, col_stats, row_stats, len, begin, end, profile,
                          best, best_j);
  }
}

template <bool kRowFlat>
void DistRowMinUpdateBody(const double* qt, const MeanStd* col_stats,
                          MeanStd row_stats, Index len, Index row, Index begin,
                          Index end, double* distances, Index* indices,
                          double* best, Index* best_j) {
  const double l = static_cast<double>(len);
  const RowConstants rc = MakeRowConstants(l, row_stats);
  LaneMin lanes = MakeLaneMin(*best, *best_j);
  const __m256i rowv = _mm256_set1_epi64x(row);
  Index j = begin;
  __m256i jv = _mm256_set_epi64x(begin + 3, begin + 2, begin + 1, begin);
  const __m256i four = _mm256_set1_epi64x(4);
  for (; j + 4 <= end; j += 4) {
    __m256d means, stds;
    LoadStats4(col_stats, j, &means, &stds);
    const __m256d qtv = _mm256_loadu_pd(qt + static_cast<std::size_t>(j));
    const __m256d d = Distance4<kRowFlat>(qtv, rc, means, stds);
    UpdateLaneMin(&lanes, d, jv);
    jv = _mm256_add_epi64(jv, four);
    // Stored-profile min-update: d < distances[j] replaces (distance, index).
    const std::size_t k = static_cast<std::size_t>(j);
    const __m256d stored = _mm256_loadu_pd(distances + k);
    const __m256d lt = _mm256_cmp_pd(d, stored, _CMP_LT_OQ);
    _mm256_storeu_pd(distances + k, _mm256_blendv_pd(stored, d, lt));
    const __m256i stored_idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(indices + k));
    const __m256i new_idx = _mm256_castpd_si256(_mm256_blendv_pd(
        _mm256_castsi256_pd(stored_idx), _mm256_castsi256_pd(rowv), lt));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(indices + k), new_idx);
  }
  ReduceLaneMin(lanes, best, best_j);
  for (; j < end; ++j) {
    const std::size_t k = static_cast<std::size_t>(j);
    const double d = internal::DistanceFromQt(qt[k], l, row_stats,
                                              col_stats[k]);
    if (d < *best) {
      *best = d;
      *best_j = j;
    }
    if (d < distances[k]) {
      distances[k] = d;
      indices[k] = row;
    }
  }
}

void DistRowMinUpdateAvx2(const double* qt, const MeanStd* col_stats,
                          MeanStd row_stats, Index len, Index row, Index begin,
                          Index end, double* distances, Index* indices,
                          double* best, Index* best_j) {
  if (IsFlatWindow(row_stats.mean, row_stats.std)) {
    DistRowMinUpdateBody<true>(qt, col_stats, row_stats, len, row, begin, end,
                               distances, indices, best, best_j);
  } else {
    DistRowMinUpdateBody<false>(qt, col_stats, row_stats, len, row, begin,
                                end, distances, indices, best, best_j);
  }
}

void LbBaseSqRowAvx2(const double* dist_row, Index n, Index len,
                     double* base_sq) {
  const double l = static_cast<double>(len);
  const double two_l = 2.0 * l;
  const __m256d lv = _mm256_set1_pd(l);
  const __m256d two_lv = _mm256_set1_pd(two_l);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d zero = _mm256_setzero_pd();
  Index j = 0;
  for (; j + 4 <= n; j += 4) {
    const std::size_t k = static_cast<std::size_t>(j);
    const __m256d d = _mm256_loadu_pd(dist_row + k);
    // q = 1 - d*d/(2l); base_sq = q <= 0 ? l : l*(1 - q*q)
    const __m256d q =
        _mm256_sub_pd(one, _mm256_div_pd(_mm256_mul_pd(d, d), two_lv));
    const __m256d structured =
        _mm256_mul_pd(lv, _mm256_sub_pd(one, _mm256_mul_pd(q, q)));
    const __m256d le = _mm256_cmp_pd(q, zero, _CMP_LE_OQ);
    _mm256_storeu_pd(base_sq + k, _mm256_blendv_pd(structured, lv, le));
  }
  for (; j < n; ++j) {
    base_sq[static_cast<std::size_t>(j)] = internal::LbBaseSqFromDistance(
        dist_row[static_cast<std::size_t>(j)], l, two_l);
  }
}

void LbAtLengthAvx2(const double* lb_base, Index n, double sigma_base,
                    double sigma_now, double* out) {
  if (sigma_now < kFlatStdEpsilon) {
    for (Index j = 0; j < n; ++j) out[static_cast<std::size_t>(j)] = 0.0;
    return;
  }
  const double ratio = sigma_base / sigma_now;
  const __m256d rv = _mm256_set1_pd(ratio);
  Index j = 0;
  for (; j + 4 <= n; j += 4) {
    const std::size_t k = static_cast<std::size_t>(j);
    _mm256_storeu_pd(out + k, _mm256_mul_pd(_mm256_loadu_pd(lb_base + k), rv));
  }
  for (; j < n; ++j) {
    out[static_cast<std::size_t>(j)] =
        lb_base[static_cast<std::size_t>(j)] * ratio;
  }
}

void SlidingDotAvx2(const double* query, Index m, const double* series,
                    Index n, double* out) {
  const Index n_out = n - m + 1;
  Index j = 0;
  // Four output dots at a time; k advances sequentially, so each lane's
  // accumulation order equals the scalar inner loop's.
  for (; j + 4 <= n_out; j += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (Index k = 0; k < m; ++k) {
      const __m256d qk = _mm256_set1_pd(query[static_cast<std::size_t>(k)]);
      const __m256d sv =
          _mm256_loadu_pd(series + static_cast<std::size_t>(j + k));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(qk, sv));
    }
    _mm256_storeu_pd(out + static_cast<std::size_t>(j), acc);
  }
  for (; j < n_out; ++j) {
    double acc = 0.0;
    for (Index k = 0; k < m; ++k) {
      acc += query[static_cast<std::size_t>(k)] *
             series[static_cast<std::size_t>(j + k)];
    }
    out[static_cast<std::size_t>(j)] = acc;
  }
}

void ZNormalizeAvx2(const double* values, Index n, double mean, double std,
                    double* out) {
  const __m256d mv = _mm256_set1_pd(mean);
  const __m256d sv = _mm256_set1_pd(std);
  Index i = 0;
  for (; i + 4 <= n; i += 4) {
    const std::size_t k = static_cast<std::size_t>(i);
    const __m256d v = _mm256_loadu_pd(values + k);
    _mm256_storeu_pd(out + k, _mm256_div_pd(_mm256_sub_pd(v, mv), sv));
  }
  for (; i < n; ++i) {
    out[static_cast<std::size_t>(i)] =
        (values[static_cast<std::size_t>(i)] - mean) / std;
  }
}

}  // namespace

namespace internal {

const SimdKernels* Avx2KernelsOrNull() {
  if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma")) {
    return nullptr;
  }
  static const SimdKernels kTable = [] {
    SimdKernels t;
    t.level = SimdLevel::kAvx2;
    t.qt_update = &QtUpdateAvx2;
    t.dist_row_min = &DistRowMinAvx2;
    t.dist_row_min_update = &DistRowMinUpdateAvx2;
    t.lb_base_sq_row = &LbBaseSqRowAvx2;
    t.lb_at_length = &LbAtLengthAvx2;
    t.sliding_dot = &SlidingDotAvx2;
    t.znormalize = &ZNormalizeAvx2;
    return t;
  }();
  return &kTable;
}

}  // namespace internal
}  // namespace simd
}  // namespace valmod

#else  // !defined(VALMOD_SIMD_AVX2)

namespace valmod {
namespace simd {
namespace internal {

const SimdKernels* Avx2KernelsOrNull() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace valmod

#endif  // defined(VALMOD_SIMD_AVX2)
