#ifndef VALMOD_MP_SIMD_KERNELS_DETAIL_H_
#define VALMOD_MP_SIMD_KERNELS_DETAIL_H_

#include <algorithm>
#include <cmath>

#include "signal/znorm.h"
#include "util/common.h"
#include "util/prefix_stats.h"

// Shared scalar bodies for the kernel tables. Both translation units — the
// scalar table and the AVX2 table (which uses these for its unaligned
// heads/tails) — must produce bit-identical doubles, so every function here
// mirrors the op *sequence* of the code it replaces (signal/distance.cc,
// core/list_dp.cc, core/lower_bound.cc) exactly: same association, same
// comparison predicates, no re-ordering. The AVX2 TU is compiled with
// -ffp-contract=off so these expressions cannot be FMA-contracted there.

namespace valmod {
namespace simd {
namespace internal {

/// Eq. 3 distance from a dot product, with the flat-window conventions of
/// signal/distance.cc: flat/flat pairs have correlation 1, flat/non-flat
/// pairs 0.5, and the structured correlation is clamped to [-1, 1].
/// `l` is the subsequence length as a double.
inline double DistanceFromQt(double qt, double l, const MeanStd& a,
                             const MeanStd& b) {
  const bool flat_a = IsFlatWindow(a.mean, a.std);
  const bool flat_b = IsFlatWindow(b.mean, b.std);
  double corr;
  if (flat_a || flat_b) {
    corr = (flat_a && flat_b) ? 1.0 : 0.5;
  } else {
    corr = (qt - l * a.mean * b.mean) / (l * a.std * b.std);
    corr = std::clamp(corr, -1.0, 1.0);
  }
  const double v = 2.0 * l * (1.0 - corr);
  return std::sqrt(std::max(0.0, v));
}

/// One step of the STOMP dot-product recurrence (Algorithm 3), exactly as
/// written in the row kernel: ((qt_prev - a*s1) + b*s2) where a = series at
/// row-1 and b = series at row+len-1.
inline double QtStep(double qt_prev, double a, double s1, double b,
                     double s2) {
  return qt_prev - a * s1 + b * s2;
}

/// Squared Eq. 2 base term recovered from an already-computed distance
/// (core/list_dp.cc HarvestProfile): q = 1 - d^2/(2l), base^2 = l(1 - q^2)
/// clamped to l when the correlation is non-positive. `two_l` must be the
/// double product 2.0 * l.
inline double LbBaseSqFromDistance(double dist, double l, double two_l) {
  const double q = 1.0 - dist * dist / two_l;
  return q <= 0.0 ? l : l * (1.0 - q * q);
}

}  // namespace internal
}  // namespace simd
}  // namespace valmod

#endif  // VALMOD_MP_SIMD_KERNELS_DETAIL_H_
