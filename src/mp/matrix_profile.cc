#include "mp/matrix_profile.h"

#include <algorithm>

namespace valmod {

MotifPair MotifFromProfile(const MatrixProfile& profile) {
  MotifPair best;
  best.length = profile.subsequence_length;
  for (Index i = 0; i < profile.size(); ++i) {
    const double d = profile.distances[static_cast<std::size_t>(i)];
    const Index j = profile.indices[static_cast<std::size_t>(i)];
    if (j == kNoNeighbor) continue;
    if (d < best.distance) {
      best.distance = d;
      best.a = std::min(i, j);
      best.b = std::max(i, j);
    }
  }
  return best;
}

std::vector<MotifPair> TopMotifsFromProfile(const MatrixProfile& profile,
                                            Index k) {
  const Index len = profile.subsequence_length;
  const Index excl = ExclusionZone(len);
  // Sort offsets by profile value ascending, then greedily take pairs whose
  // occurrences do not overlap previously taken ones.
  std::vector<Index> order(static_cast<std::size_t>(profile.size()));
  for (Index i = 0; i < profile.size(); ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  std::sort(order.begin(), order.end(), [&](Index x, Index y) {
    return profile.distances[static_cast<std::size_t>(x)] <
           profile.distances[static_cast<std::size_t>(y)];
  });
  std::vector<MotifPair> out;
  std::vector<Index> taken;  // Offsets already covered by selected motifs.
  auto overlaps_taken = [&](Index off) {
    for (Index t : taken) {
      if (std::llabs(static_cast<long long>(t - off)) < excl) return true;
    }
    return false;
  };
  for (Index i : order) {
    if (static_cast<Index>(out.size()) >= k) break;
    const Index j = profile.indices[static_cast<std::size_t>(i)];
    if (j == kNoNeighbor) continue;
    if (profile.distances[static_cast<std::size_t>(i)] == kInf) break;
    if (overlaps_taken(i) || overlaps_taken(j)) continue;
    MotifPair pair;
    pair.a = std::min(i, j);
    pair.b = std::max(i, j);
    pair.length = len;
    pair.distance = profile.distances[static_cast<std::size_t>(i)];
    out.push_back(pair);
    taken.push_back(i);
    taken.push_back(j);
  }
  return out;
}

Discord DiscordFromProfile(const MatrixProfile& profile) {
  Discord best;
  best.length = profile.subsequence_length;
  for (Index i = 0; i < profile.size(); ++i) {
    const double d = profile.distances[static_cast<std::size_t>(i)];
    if (profile.indices[static_cast<std::size_t>(i)] == kNoNeighbor) continue;
    if (d > best.distance && d != kInf) {
      best.distance = d;
      best.offset = i;
    }
  }
  return best;
}

}  // namespace valmod
