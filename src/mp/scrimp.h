#ifndef VALMOD_MP_SCRIMP_H_
#define VALMOD_MP_SCRIMP_H_

#include <cstdint>
#include <functional>
#include <span>

#include "mp/matrix_profile.h"
#include "util/common.h"
#include "util/prefix_stats.h"

namespace valmod {

/// Options for the SCRIMP computation.
struct ScrimpOptions {
  /// Evaluate the diagonals in random order (the anytime property: each
  /// diagonal sprinkles updates across the whole profile, so a random
  /// prefix of diagonals approximates the final profile much faster than
  /// STOMP's row order does).
  bool randomize_order = true;
  std::uint64_t seed = 13;
  /// Stop after this many diagonals (0 = all); partial results are valid
  /// upper bounds of the final profile.
  Index max_diagonals = 0;
  /// Invoked every `snapshot_every` diagonals; 0 disables.
  Index snapshot_every = 0;
  std::function<void(Index diagonals_done, const MatrixProfile& so_far)>
      snapshot;
};

/// SCRIMP [Zhu et al., "Matrix Profile XI", ICDM'18]: the exact O(n^2)
/// matrix profile computed *diagonal by diagonal*. Along diagonal d the dot
/// product obeys QT(i+1, i+d+1) = QT(i, i+d) - t_i*t_{i+d} +
/// t_{i+len}*t_{i+d+len}, so each diagonal costs O(n) like a STOMP row —
/// but diagonals can be visited in random order, giving a far better
/// anytime profile than row order. Complements STOMP (used by VALMOD's
/// inner loop) and STAMP (per-row MASS) in the substrate.
MatrixProfile Scrimp(std::span<const double> series, const PrefixStats& stats,
                     Index len, const ScrimpOptions& options = ScrimpOptions());

/// Convenience overload; centers the input internally.
MatrixProfile Scrimp(std::span<const double> series, Index len);

}  // namespace valmod

#endif  // VALMOD_MP_SCRIMP_H_
