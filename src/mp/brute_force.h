#ifndef VALMOD_MP_BRUTE_FORCE_H_
#define VALMOD_MP_BRUTE_FORCE_H_

#include <span>
#include <vector>

#include "mp/matrix_profile.h"
#include "util/common.h"

namespace valmod {

/// O(n^2 * len) motif pair search by direct z-normalization of every
/// subsequence pair. The ground-truth oracle for all faster algorithms.
MotifPair BruteForceMotif(std::span<const double> series, Index len);

/// O(n^2 * len) matrix profile by direct computation; test oracle for STOMP
/// and STAMP.
MatrixProfile BruteForceMatrixProfile(std::span<const double> series,
                                      Index len);

/// Brute-force variable-length search: BruteForceMotif for every length in
/// [len_min, len_max]. Oracle for VALMOD / MOEN end-to-end tests.
std::vector<MotifPair> BruteForceVariableLengthMotifs(
    std::span<const double> series, Index len_min, Index len_max);

}  // namespace valmod

#endif  // VALMOD_MP_BRUTE_FORCE_H_
