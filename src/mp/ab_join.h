#ifndef VALMOD_MP_AB_JOIN_H_
#define VALMOD_MP_AB_JOIN_H_

#include <span>

#include "mp/matrix_profile.h"
#include "util/common.h"
#include "util/timer.h"

namespace valmod {

/// The AB-join matrix profile ("Matrix Profile I", Yeh et al. ICDM'16):
/// for every subsequence of series A, the z-normalized distance to its
/// nearest neighbour among the subsequences of series B (and the matching
/// index). Unlike the self-join there is no trivial-match exclusion — the
/// two series are distinct. The self-join special case of this machinery is
/// what VALMOD accelerates across lengths; the AB-join is the natural
/// companion primitive an adopter of this library expects (similarity join
/// between two recordings).
struct AbJoinProfile {
  Index subsequence_length = 0;
  /// distances[i]: distance from A's subsequence i to its nearest
  /// neighbour in B.
  std::vector<double> distances;
  /// indices[i]: offset of that neighbour in B.
  std::vector<Index> indices;

  Index size() const { return static_cast<Index>(distances.size()); }
};

/// Computes the AB-join profile of `series_a` against `series_b` at
/// subsequence length `len` with the STOMP-style incremental kernel:
/// O(|A| * |B|) after an O(|B| log |B|) start-up. `deadline` aborts with
/// `*out_dnf` set; already-finished rows stay valid.
AbJoinProfile AbJoin(std::span<const double> series_a,
                     std::span<const double> series_b, Index len,
                     const Deadline& deadline = Deadline(),
                     bool* out_dnf = nullptr);

/// The closest pair between the two series (the "join motif").
MotifPair AbJoinMotif(const AbJoinProfile& profile);

/// Naive O(|A| * |B| * len) reference; the test oracle.
AbJoinProfile AbJoinNaive(std::span<const double> series_a,
                          std::span<const double> series_b, Index len);

}  // namespace valmod

#endif  // VALMOD_MP_AB_JOIN_H_
