#include "mp/scrimp.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "signal/distance.h"
#include "signal/znorm.h"
#include "util/check.h"
#include "util/random.h"

namespace valmod {

MatrixProfile Scrimp(std::span<const double> series, const PrefixStats& stats,
                     Index len, const ScrimpOptions& options) {
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(len >= 2 && n >= len + 1);
  const Index n_sub = NumSubsequences(n, len);
  const Index excl = ExclusionZone(len);

  MatrixProfile result;
  result.subsequence_length = len;
  result.distances.assign(static_cast<std::size_t>(n_sub), kInf);
  result.indices.assign(static_cast<std::size_t>(n_sub), kNoNeighbor);

  // Column statistics once (same optimization as the STOMP kernel).
  std::vector<MeanStd> col_stats(static_cast<std::size_t>(n_sub));
  for (Index j = 0; j < n_sub; ++j) {
    col_stats[static_cast<std::size_t>(j)] = stats.Stats(j, len);
  }

  // Diagonals d = excl .. n_sub-1 (pairs (i, i+d)); smaller separations are
  // trivial matches by definition.
  std::vector<Index> diagonals;
  for (Index d = excl; d < n_sub; ++d) diagonals.push_back(d);
  if (options.randomize_order) {
    Rng rng(options.seed);
    for (Index i = static_cast<Index>(diagonals.size()) - 1; i > 0; --i) {
      const Index j = rng.UniformIndex(0, i);
      std::swap(diagonals[static_cast<std::size_t>(i)],
                diagonals[static_cast<std::size_t>(j)]);
    }
  }
  const Index budget =
      options.max_diagonals > 0
          ? std::min<Index>(options.max_diagonals,
                            static_cast<Index>(diagonals.size()))
          : static_cast<Index>(diagonals.size());

  for (Index step = 0; step < budget; ++step) {
    const Index d = diagonals[static_cast<std::size_t>(step)];
    // Walk the diagonal: pairs (i, i + d) for i = 0 .. n_sub - d - 1,
    // updating the dot product in O(1) per step.
    double qt = SubsequenceDotProduct(series, 0, d, len);
    for (Index i = 0; i + d < n_sub; ++i) {
      if (i > 0) {
        qt += -series[static_cast<std::size_t>(i - 1)] *
                  series[static_cast<std::size_t>(i + d - 1)] +
              series[static_cast<std::size_t>(i + len - 1)] *
                  series[static_cast<std::size_t>(i + d + len - 1)];
      }
      const Index j = i + d;
      const double dist = ZNormalizedDistanceFromDotProduct(
          qt, len, col_stats[static_cast<std::size_t>(i)],
          col_stats[static_cast<std::size_t>(j)]);
      if (dist < result.distances[static_cast<std::size_t>(i)]) {
        result.distances[static_cast<std::size_t>(i)] = dist;
        result.indices[static_cast<std::size_t>(i)] = j;
      }
      if (dist < result.distances[static_cast<std::size_t>(j)]) {
        result.distances[static_cast<std::size_t>(j)] = dist;
        result.indices[static_cast<std::size_t>(j)] = i;
      }
    }
    if (options.snapshot_every > 0 && options.snapshot &&
        (step + 1) % options.snapshot_every == 0) {
      options.snapshot(step + 1, result);
    }
  }
  return result;
}

MatrixProfile Scrimp(std::span<const double> series, Index len) {
  const Series centered = CenterSeries(series);
  const PrefixStats stats(centered);
  return Scrimp(centered, stats, len);
}

}  // namespace valmod
