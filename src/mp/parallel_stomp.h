#ifndef VALMOD_MP_PARALLEL_STOMP_H_
#define VALMOD_MP_PARALLEL_STOMP_H_

#include <span>

#include "mp/matrix_profile.h"
#include "util/common.h"
#include "util/prefix_stats.h"

namespace valmod {

/// Multi-threaded STOMP: the row recurrence QT(i) -> QT(i+1) is sequential,
/// but independent *chunks* of rows can each seed their first row with MASS
/// and then run the O(n)-per-row recurrence privately (the standard
/// parallelization used by production matrix-profile implementations and
/// by the GPU variant the paper cites). Deterministic and exact: serial
/// Stomp runs the identical fixed chunk grid (stomp_kernel.h), so the
/// result is bit-identical to single-threaded Stomp for any thread count.
///
/// `threads` <= 0 picks std::thread::hardware_concurrency(). With one
/// thread this degenerates to (and is tested against) the serial kernel.
MatrixProfile ParallelStomp(std::span<const double> series,
                            const PrefixStats& stats, Index len,
                            int threads = 0);

/// Convenience overload; centers the input internally.
MatrixProfile ParallelStomp(std::span<const double> series, Index len,
                            int threads = 0);

}  // namespace valmod

#endif  // VALMOD_MP_PARALLEL_STOMP_H_
