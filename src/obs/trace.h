#ifndef VALMOD_OBS_TRACE_H_
#define VALMOD_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"

// Compile-time tracing gate. The build defines VALMOD_TRACING_ENABLED=0 when
// configured with -DVALMOD_TRACING=OFF; consumers outside CMake default to
// the instrumented build.
#ifndef VALMOD_TRACING_ENABLED
#define VALMOD_TRACING_ENABLED 1
#endif

namespace valmod {
namespace obs {

/// One completed span, collected by TraceSession::StopAndCollect. `name` is
/// the span's string literal (TraceSpan requires literal names so events
/// never dangle); `tid` is a dense per-session thread id in first-use
/// order; `depth` the span's nesting level on its thread; times are
/// nanoseconds relative to the session start.
struct TraceEvent {
  const char* name = nullptr;
  std::uint32_t tid = 0;
  std::int32_t depth = 0;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
};

/// A finished stage captured for the slow-query log: a flattened span-tree
/// node (spans at relative depth 0 or 1 below the sink's install point).
struct StageRecord {
  const char* name = nullptr;
  double dur_us = 0.0;
  int depth = 0;
};

/// Per-request sink for span completions, independent of any global trace
/// session: the query engine installs one around each request (on both the
/// request thread and the executor worker), and the slow-query log renders
/// the captured stages. Bounded: at most kMaxStages records are kept, the
/// rest are counted as dropped.
class StageRecorder {
 public:
  /// Capacity bound on recorded stages; overflow increments dropped().
  static constexpr std::size_t kMaxStages = 128;

  /// Appends one stage record (drops and counts beyond kMaxStages).
  void Add(const char* name, double dur_us, int depth);

  /// Stages recorded so far, in completion order.
  const std::vector<StageRecord>& stages() const { return stages_; }

  /// Number of stages dropped by the kMaxStages bound.
  std::size_t dropped() const { return dropped_; }

 private:
  std::vector<StageRecord> stages_;
  std::size_t dropped_ = 0;
};

/// RAII installer of a thread-local StageRecorder: spans completing on this
/// thread while the sink is installed are mirrored into the recorder.
/// Depths are relative to the install point, and only relative depths 0-1
/// are recorded, so per-chunk kernel spans do not flood it. Nestable; the
/// previous sink is restored on destruction. The recorder must outlive the
/// scope. Spans feed the sink only when tracing is compiled in; manual
/// StageRecorder::Add calls work either way.
class ScopedStageSink {
 public:
  /// Installs `recorder` as this thread's stage sink.
  explicit ScopedStageSink(StageRecorder* recorder);

  /// Restores the previously installed sink.
  ~ScopedStageSink();

  ScopedStageSink(const ScopedStageSink&) = delete;
  ScopedStageSink& operator=(const ScopedStageSink&) = delete;

 private:
  StageRecorder* previous_;
  std::int32_t previous_base_;
};

/// The process-wide trace recorder. Start() arms span collection into
/// per-thread buffers; StopAndCollect()/StopAndExportJson() disarm it and
/// return every span completed during the session. One session at a time;
/// Start() while active restarts (discarding buffered spans). All methods
/// are thread-safe. When tracing is compiled out the session always
/// collects zero events.
class TraceSession {
 public:
  /// Per-thread event-buffer bound; spans beyond it are counted in
  /// dropped_events() instead of buffered.
  static constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

  /// The process-wide session singleton.
  static TraceSession& Global();

  /// Arms collection: clears all thread buffers and timestamps the session
  /// start (span timestamps are relative to it).
  void Start();

  /// Disarms collection and returns the buffered events, grouped by thread
  /// (threads in first-span order) and in completion order within each
  /// thread — a deterministic sequence for single-threaded workloads.
  std::vector<TraceEvent> StopAndCollect();

  /// StopAndCollect() rendered as Chrome trace_event JSON
  /// (obs/chrome_trace.h), loadable in chrome://tracing and Perfetto.
  std::string StopAndExportJson();

  /// True between Start() and Stop*().
  bool active() const;

  /// Events dropped by the per-thread buffer bound since process start.
  std::int64_t dropped_events() const;
};

#if VALMOD_TRACING_ENABLED

/// A RAII tracing span: construction timestamps the start, destruction
/// records the completed span into the active TraceSession's thread-local
/// buffer and/or the installed StageRecorder sink. `name` MUST be a string
/// literal (it is stored by pointer), snake_case and unique per file
/// (enforced by tools/lint_invariants.py, check `obs-span-names`). When
/// neither a session nor a sink is active, construction is two
/// thread-local/atomic loads and destruction is a branch. Compiled to an
/// empty type with -DVALMOD_TRACING=OFF.
class TraceSpan {
 public:
  /// Opens a span named `name` (string literal; see class comment).
  explicit TraceSpan(const char* name);

  /// Closes the span and records it if armed.
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::int64_t start_ns_ = 0;
  std::int32_t depth_ = 0;
  bool armed_ = false;
};

#else  // !VALMOD_TRACING_ENABLED

/// Tracing compiled out: spans are empty objects with no members and no
/// side effects, so the optimizer erases them entirely.
class TraceSpan {
 public:
  /// No-op; the name is discarded at compile time.
  explicit TraceSpan(const char*) {}
};

static_assert(sizeof(TraceSpan) == 1 && alignof(TraceSpan) == 1,
              "tracing-off TraceSpan must compile to an empty object");

#endif  // VALMOD_TRACING_ENABLED

}  // namespace obs
}  // namespace valmod

#endif  // VALMOD_OBS_TRACE_H_
