#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "obs/chrome_trace.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace valmod {
namespace obs {

void StageRecorder::Add(const char* name, double dur_us, int depth) {
  if (stages_.size() >= kMaxStages) {
    ++dropped_;
    return;
  }
  stages_.push_back(StageRecord{name, dur_us, depth});
}

namespace {

thread_local StageRecorder* t_stage_sink = nullptr;
thread_local std::int32_t t_span_depth = 0;
// Span depth at sink install time; stage records report depth relative to
// it, so a span wrapping the installer does not shift what gets recorded.
thread_local std::int32_t t_sink_base_depth = 0;

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#if VALMOD_TRACING_ENABLED

// One buffer per thread that ever completed a span while a session was
// active. The buffer is shared (shared_ptr) between the owning thread_local
// slot and the global registry, so StopAndCollect can read buffers of
// exited threads and exited threads cannot dangle the registry.
struct ThreadBuffer {
  Mutex mutex;
  // Events from the current session generation only; bounded by
  // TraceSession::kMaxEventsPerThread (overflow counts as dropped).
  std::vector<TraceEvent> events GUARDED_BY(mutex);
  std::uint64_t generation GUARDED_BY(mutex) = 0;
  std::uint32_t tid = 0;  // unguarded: written once at registration
};

struct TraceGlobals {
  std::atomic<bool> active{false};
  std::atomic<std::int64_t> dropped{0};
  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::int64_t> session_start_ns{0};
  Mutex registry_mutex;
  // Registration order == first-span order == stable tid order.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers
      GUARDED_BY(registry_mutex);
};

TraceGlobals& Globals() {
  static TraceGlobals globals;
  return globals;
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = []() {
    auto fresh = std::make_shared<ThreadBuffer>();
    TraceGlobals& globals = Globals();
    const MutexLock lock(&globals.registry_mutex);
    fresh->tid = static_cast<std::uint32_t>(globals.buffers.size());
    globals.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

#endif  // VALMOD_TRACING_ENABLED

}  // namespace

ScopedStageSink::ScopedStageSink(StageRecorder* recorder)
    : previous_(t_stage_sink), previous_base_(t_sink_base_depth) {
  t_stage_sink = recorder;
  t_sink_base_depth = t_span_depth;
}

ScopedStageSink::~ScopedStageSink() {
  t_stage_sink = previous_;
  t_sink_base_depth = previous_base_;
}

TraceSession& TraceSession::Global() {
  static TraceSession session;
  return session;
}

#if VALMOD_TRACING_ENABLED

void TraceSession::Start() {
  TraceGlobals& globals = Globals();
  const MutexLock lock(&globals.registry_mutex);
  const std::uint64_t generation =
      globals.generation.fetch_add(1, std::memory_order_relaxed) + 1;
  globals.session_start_ns.store(NowNs(), std::memory_order_relaxed);
  for (const std::shared_ptr<ThreadBuffer>& buffer : globals.buffers) {
    const MutexLock buffer_lock(&buffer->mutex);
    buffer->events.clear();
    buffer->generation = generation;
  }
  globals.active.store(true, std::memory_order_release);
}

std::vector<TraceEvent> TraceSession::StopAndCollect() {
  TraceGlobals& globals = Globals();
  std::vector<TraceEvent> collected;
  const MutexLock lock(&globals.registry_mutex);
  globals.active.store(false, std::memory_order_release);
  const std::uint64_t generation =
      globals.generation.load(std::memory_order_relaxed);
  for (const std::shared_ptr<ThreadBuffer>& buffer : globals.buffers) {
    const MutexLock buffer_lock(&buffer->mutex);
    if (buffer->generation != generation) continue;
    collected.insert(collected.end(), buffer->events.begin(),
                     buffer->events.end());
    buffer->events.clear();
  }
  return collected;
}

bool TraceSession::active() const {
  return Globals().active.load(std::memory_order_acquire);
}

std::int64_t TraceSession::dropped_events() const {
  return Globals().dropped.load(std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  const bool session_active =
      Globals().active.load(std::memory_order_relaxed);
  if (!session_active && t_stage_sink == nullptr) return;
  armed_ = true;
  depth_ = t_span_depth++;
  start_ns_ = NowNs();
}

TraceSpan::~TraceSpan() {
  if (!armed_) return;
  const std::int64_t end_ns = NowNs();
  --t_span_depth;
  const std::int32_t sink_depth = depth_ - t_sink_base_depth;
  if (t_stage_sink != nullptr && sink_depth >= 0 && sink_depth <= 1) {
    t_stage_sink->Add(name_, static_cast<double>(end_ns - start_ns_) / 1e3,
                      sink_depth);
  }
  TraceGlobals& globals = Globals();
  if (!globals.active.load(std::memory_order_relaxed)) return;
  ThreadBuffer& buffer = LocalBuffer();
  const MutexLock lock(&buffer.mutex);
  // Threads whose buffer registered after Start() stamped the registry carry
  // a stale generation; adopt the live session lazily on first event.
  const std::uint64_t generation =
      globals.generation.load(std::memory_order_relaxed);
  if (buffer.generation != generation) {
    buffer.events.clear();
    buffer.generation = generation;
  }
  if (buffer.events.size() >= TraceSession::kMaxEventsPerThread) {
    globals.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent event;
  event.name = name_;
  event.tid = buffer.tid;
  event.depth = depth_;
  event.start_ns =
      start_ns_ - globals.session_start_ns.load(std::memory_order_relaxed);
  event.dur_ns = end_ns - start_ns_;
  buffer.events.push_back(event);
}

#else  // !VALMOD_TRACING_ENABLED

void TraceSession::Start() {}

std::vector<TraceEvent> TraceSession::StopAndCollect() { return {}; }

bool TraceSession::active() const { return false; }

std::int64_t TraceSession::dropped_events() const { return 0; }

#endif  // VALMOD_TRACING_ENABLED

std::string TraceSession::StopAndExportJson() {
  return ChromeTraceJson(StopAndCollect());
}

}  // namespace obs
}  // namespace valmod
