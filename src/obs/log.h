#ifndef VALMOD_OBS_LOG_H_
#define VALMOD_OBS_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace valmod {
namespace obs {

/// Structured-log severity, ordered so numeric comparison is a threshold.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// The level's lowercase name ("debug", "info", "warn", "error").
const char* LogLevelName(LogLevel level);

/// Process-wide structured-logging configuration: a minimum level (events
/// below it are discarded at build time, default kWarn so libraries stay
/// quiet) and an optional sink override for tests and embedders (default
/// sink writes one line to stderr). Thread-safe.
class Log {
 public:
  /// Sets the minimum emitted level.
  static void SetMinLevel(LogLevel level);

  /// Current minimum emitted level.
  static LogLevel min_level();

  /// Replaces the output sink; each call receives one complete JSON line
  /// (no trailing newline). Pass nullptr to restore the stderr sink.
  static void SetSink(std::function<void(const std::string&)> sink);
};

/// Builder for one structured JSON log line, emitted on destruction:
///
///   obs::LogEvent(obs::LogLevel::kWarn, "slow_query")
///       .Str("dataset", name).Int("n", n).Num("elapsed_us", us);
///
/// renders {"level":"warn","event":"slow_query","dataset":...}. Events
/// below Log::min_level() skip all formatting. Field keys must be JSON-safe
/// literals; string values are escaped.
class LogEvent {
 public:
  /// Starts an event named `event` (a literal tag, not free text).
  LogEvent(LogLevel level, const char* event);

  /// Emits the line to the configured sink (unless below the threshold).
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  /// Adds an escaped string field.
  LogEvent& Str(const char* key, std::string_view value);

  /// Adds an integer field.
  LogEvent& Int(const char* key, std::int64_t value);

  /// Adds a numeric field (%.6g; NaN/Inf render as null).
  LogEvent& Num(const char* key, double value);

  /// Adds a boolean field.
  LogEvent& Bool(const char* key, bool value);

  /// Adds a pre-rendered JSON value verbatim; `json` must be valid JSON.
  LogEvent& Raw(const char* key, std::string_view json);

 private:
  /// Appends `,"key":` to the pending line.
  void AppendKey(const char* key);

  std::string line_;
  bool enabled_;
};

}  // namespace obs
}  // namespace valmod

#endif  // VALMOD_OBS_LOG_H_
