#include "obs/log.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace valmod {
namespace obs {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};

struct SinkState {
  Mutex mutex;
  std::function<void(const std::string&)> sink GUARDED_BY(mutex);
};

SinkState& Sink() {
  static SinkState state;
  return state;
}

void Emit(const std::string& line) {
  SinkState& state = Sink();
  const MutexLock lock(&state.mutex);
  if (state.sink) {
    state.sink(line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

void AppendEscaped(std::string* out, std::string_view value) {
  for (const char c : value) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out->append(buffer);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

void Log::SetMinLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Log::min_level() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void Log::SetSink(std::function<void(const std::string&)> sink) {
  SinkState& state = Sink();
  const MutexLock lock(&state.mutex);
  state.sink = std::move(sink);
}

LogEvent::LogEvent(LogLevel level, const char* event)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)) {
  if (!enabled_) return;
  line_.reserve(128);
  line_.append("{\"level\":\"");
  line_.append(LogLevelName(level));
  line_.append("\",\"event\":\"");
  AppendEscaped(&line_, event);
  line_.push_back('"');
}

LogEvent::~LogEvent() {
  if (!enabled_) return;
  line_.push_back('}');
  Emit(line_);
}

void LogEvent::AppendKey(const char* key) {
  line_.append(",\"");
  line_.append(key);
  line_.append("\":");
}

LogEvent& LogEvent::Str(const char* key, std::string_view value) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_.push_back('"');
  AppendEscaped(&line_, value);
  line_.push_back('"');
  return *this;
}

LogEvent& LogEvent::Int(const char* key, std::int64_t value) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_.append(std::to_string(value));
  return *this;
}

LogEvent& LogEvent::Num(const char* key, double value) {
  if (!enabled_) return *this;
  AppendKey(key);
  if (!std::isfinite(value)) {
    line_.append("null");
    return *this;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  line_.append(buffer);
  return *this;
}

LogEvent& LogEvent::Bool(const char* key, bool value) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_.append(value ? "true" : "false");
  return *this;
}

LogEvent& LogEvent::Raw(const char* key, std::string_view json) {
  if (!enabled_) return *this;
  AppendKey(key);
  line_.append(json);
  return *this;
}

}  // namespace obs
}  // namespace valmod
