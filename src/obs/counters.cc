#include "obs/counters.h"

#include <atomic>

namespace valmod {
namespace obs {

double CountersSnapshot::MeanLbTightness() const {
  if (lb_tightness_samples <= 0) return 0.0;
  return static_cast<double>(lb_tightness_ppm_sum) /
         (1e6 * static_cast<double>(lb_tightness_samples));
}

namespace {

struct CounterCells {
  std::atomic<std::int64_t> mp_profiles_full_stomp{0};
  std::atomic<std::int64_t> submp_profiles_certified{0};
  std::atomic<std::int64_t> submp_profiles_recomputed{0};
  std::atomic<std::int64_t> submp_profiles_uncertified{0};
  std::atomic<std::int64_t> submp_lengths_certified{0};
  std::atomic<std::int64_t> submp_lengths_total{0};
  std::atomic<std::int64_t> valmod_full_fallbacks{0};
  std::atomic<std::int64_t> listdp_heap_updates{0};
  std::atomic<std::int64_t> stomp_rows{0};
  std::atomic<std::int64_t> stomp_chunks{0};
  std::atomic<std::int64_t> lb_tightness_ppm_sum{0};
  std::atomic<std::int64_t> lb_tightness_samples{0};
  std::atomic<std::int64_t> catalog_hits{0};
  std::atomic<std::int64_t> catalog_misses{0};
  std::atomic<std::int64_t> catalog_evictions{0};
  std::atomic<std::int64_t> coalesced_jobs{0};
};

CounterCells& Cells() {
  static CounterCells cells;
  return cells;
}

void Add(std::atomic<std::int64_t>& cell, std::int64_t value) {
  if (value != 0) cell.fetch_add(value, std::memory_order_relaxed);
}

}  // namespace

void Counters::RecordFullProfilePass(std::int64_t profiles,
                                     std::int64_t heap_updates) {
  CounterCells& cells = Cells();
  Add(cells.mp_profiles_full_stomp, profiles);
  Add(cells.listdp_heap_updates, heap_updates);
}

void Counters::RecordSubMpLength(std::int64_t certified,
                                 std::int64_t recomputed,
                                 std::int64_t uncertified, bool motif_certified,
                                 std::int64_t heap_updates,
                                 double tightness_ratio) {
  CounterCells& cells = Cells();
  Add(cells.submp_profiles_certified, certified);
  Add(cells.submp_profiles_recomputed, recomputed);
  Add(cells.submp_profiles_uncertified, uncertified);
  cells.submp_lengths_total.fetch_add(1, std::memory_order_relaxed);
  if (motif_certified) {
    cells.submp_lengths_certified.fetch_add(1, std::memory_order_relaxed);
  }
  Add(cells.listdp_heap_updates, heap_updates);
  if (tightness_ratio >= 0.0) {
    Add(cells.lb_tightness_ppm_sum,
        static_cast<std::int64_t>(tightness_ratio * 1e6 + 0.5));
    cells.lb_tightness_samples.fetch_add(1, std::memory_order_relaxed);
  }
}

void Counters::RecordStompChunk(std::int64_t rows) {
  CounterCells& cells = Cells();
  Add(cells.stomp_rows, rows);
  cells.stomp_chunks.fetch_add(1, std::memory_order_relaxed);
}

void Counters::RecordValmodFallback() {
  Cells().valmod_full_fallbacks.fetch_add(1, std::memory_order_relaxed);
}

void Counters::RecordCatalogLookup(bool hit) {
  CounterCells& cells = Cells();
  (hit ? cells.catalog_hits : cells.catalog_misses)
      .fetch_add(1, std::memory_order_relaxed);
}

void Counters::RecordCatalogEviction() {
  Cells().catalog_evictions.fetch_add(1, std::memory_order_relaxed);
}

void Counters::RecordCoalescedJob() {
  Cells().coalesced_jobs.fetch_add(1, std::memory_order_relaxed);
}

CountersSnapshot Counters::Snapshot() {
  CounterCells& cells = Cells();
  CountersSnapshot snapshot;
  snapshot.mp_profiles_full_stomp =
      cells.mp_profiles_full_stomp.load(std::memory_order_relaxed);
  snapshot.submp_profiles_certified =
      cells.submp_profiles_certified.load(std::memory_order_relaxed);
  snapshot.submp_profiles_recomputed =
      cells.submp_profiles_recomputed.load(std::memory_order_relaxed);
  snapshot.submp_profiles_uncertified =
      cells.submp_profiles_uncertified.load(std::memory_order_relaxed);
  snapshot.submp_lengths_certified =
      cells.submp_lengths_certified.load(std::memory_order_relaxed);
  snapshot.submp_lengths_total =
      cells.submp_lengths_total.load(std::memory_order_relaxed);
  snapshot.valmod_full_fallbacks =
      cells.valmod_full_fallbacks.load(std::memory_order_relaxed);
  snapshot.listdp_heap_updates =
      cells.listdp_heap_updates.load(std::memory_order_relaxed);
  snapshot.stomp_rows = cells.stomp_rows.load(std::memory_order_relaxed);
  snapshot.stomp_chunks = cells.stomp_chunks.load(std::memory_order_relaxed);
  snapshot.lb_tightness_ppm_sum =
      cells.lb_tightness_ppm_sum.load(std::memory_order_relaxed);
  snapshot.lb_tightness_samples =
      cells.lb_tightness_samples.load(std::memory_order_relaxed);
  snapshot.catalog_hits = cells.catalog_hits.load(std::memory_order_relaxed);
  snapshot.catalog_misses =
      cells.catalog_misses.load(std::memory_order_relaxed);
  snapshot.catalog_evictions =
      cells.catalog_evictions.load(std::memory_order_relaxed);
  snapshot.coalesced_jobs =
      cells.coalesced_jobs.load(std::memory_order_relaxed);
  return snapshot;
}

void Counters::Reset() {
  CounterCells& cells = Cells();
  cells.mp_profiles_full_stomp.store(0, std::memory_order_relaxed);
  cells.submp_profiles_certified.store(0, std::memory_order_relaxed);
  cells.submp_profiles_recomputed.store(0, std::memory_order_relaxed);
  cells.submp_profiles_uncertified.store(0, std::memory_order_relaxed);
  cells.submp_lengths_certified.store(0, std::memory_order_relaxed);
  cells.submp_lengths_total.store(0, std::memory_order_relaxed);
  cells.valmod_full_fallbacks.store(0, std::memory_order_relaxed);
  cells.listdp_heap_updates.store(0, std::memory_order_relaxed);
  cells.stomp_rows.store(0, std::memory_order_relaxed);
  cells.stomp_chunks.store(0, std::memory_order_relaxed);
  cells.lb_tightness_ppm_sum.store(0, std::memory_order_relaxed);
  cells.lb_tightness_samples.store(0, std::memory_order_relaxed);
  cells.catalog_hits.store(0, std::memory_order_relaxed);
  cells.catalog_misses.store(0, std::memory_order_relaxed);
  cells.catalog_evictions.store(0, std::memory_order_relaxed);
  cells.coalesced_jobs.store(0, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace valmod
