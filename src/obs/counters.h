#ifndef VALMOD_OBS_COUNTERS_H_
#define VALMOD_OBS_COUNTERS_H_

#include <cstdint>

namespace valmod {
namespace obs {

/// A point-in-time copy of the process-wide algorithm counters (see
/// Counters). Field names match the Prometheus series the service exports
/// (prefixed valmod_). The counter glossary in docs/OBSERVABILITY.md maps
/// each field to the VALMOD paper's Algorithm 3/4 lines.
struct CountersSnapshot {
  /// Distance profiles computed by a full STOMP pass (Algorithm 3 and any
  /// full-recompute fallback lengths in Algorithm 1).
  std::int64_t mp_profiles_full_stomp = 0;
  /// Sub-MP entries certified from the listDP lower bounds alone
  /// (Algorithm 4 lines 7-12: minDist <= maxLB, no recompute needed).
  std::int64_t submp_profiles_certified = 0;
  /// Sub-MP entries salvaged by the selective "last opportunity" recompute
  /// (Algorithm 4 lines 17-21).
  std::int64_t submp_profiles_recomputed = 0;
  /// Sub-MP entries left non-valid after update + recompute.
  std::int64_t submp_profiles_uncertified = 0;
  /// ComputeSubMp calls whose best motif was certified without a full pass
  /// (Algorithm 4 line 14: minDistABS < minLbAbs).
  std::int64_t submp_lengths_certified = 0;
  /// Total ComputeSubMp calls.
  std::int64_t submp_lengths_total = 0;
  /// Lengths where RunValmod fell back to a full STOMP recompute because
  /// the sub-MP could not certify the motif (Algorithm 1 line 10).
  std::int64_t valmod_full_fallbacks = 0;
  /// Successful listDP bounded-heap insertions across harvest passes.
  std::int64_t listdp_heap_updates = 0;
  /// Rows processed by the STOMP kernel (each = one distance profile).
  std::int64_t stomp_rows = 0;
  /// Fixed-grid chunks processed by the STOMP kernel.
  std::int64_t stomp_chunks = 0;
  /// Sum of per-length tightness ratios minDistABS/minLbAbs in parts per
  /// million (ratio <= 1 when the bound certifies; see MeanLbTightness).
  std::int64_t lb_tightness_ppm_sum = 0;
  /// Number of finite tightness samples in lb_tightness_ppm_sum.
  std::int64_t lb_tightness_samples = 0;
  /// Catalog lookups that served a persisted artifact (resident or from
  /// disk) instead of recomputing.
  std::int64_t catalog_hits = 0;
  /// Catalog lookups that found nothing servable (absent or corrupt).
  std::int64_t catalog_misses = 0;
  /// Resident catalog entries evicted to respect the byte budget.
  std::int64_t catalog_evictions = 0;
  /// Cold jobs that joined an already-in-flight identical computation
  /// instead of paying their own STOMP (Singleflight followers).
  std::int64_t coalesced_jobs = 0;

  /// Mean lower-bound tightness ratio minDistABS/minLbAbs across sampled
  /// lengths, or 0 when no finite sample was recorded. Values near 1 mean
  /// the bound is tight; small values mean loose bounds.
  double MeanLbTightness() const;
};

/// Process-wide algorithm counters behind the observability layer: the
/// pruning statistics of Algorithms 3/4 (certified vs recomputed vs
/// fallback profiles, heap updates, bound tightness) plus kernel row
/// counts. All recorders are lock-free relaxed atomics, callable from any
/// thread; the core layer batches locally and records once per pass so the
/// hot loops stay untouched.
class Counters {
 public:
  /// Records one full STOMP profile pass harvesting `profiles` distance
  /// profiles with `heap_updates` successful listDP insertions.
  static void RecordFullProfilePass(std::int64_t profiles,
                                    std::int64_t heap_updates);

  /// Records one ComputeSubMp call: `certified` entries valid from bounds
  /// alone, `recomputed` salvaged selectively, `uncertified` left invalid;
  /// `motif_certified` is the Algorithm 4 line 14 outcome;
  /// `tightness_ratio` is minDistABS/minLbAbs (pass a negative value when
  /// not finite to skip the sample).
  static void RecordSubMpLength(std::int64_t certified,
                                std::int64_t recomputed,
                                std::int64_t uncertified, bool motif_certified,
                                std::int64_t heap_updates,
                                double tightness_ratio);

  /// Records one processed STOMP kernel chunk of `rows` rows.
  static void RecordStompChunk(std::int64_t rows);

  /// Records one full-STOMP fallback taken by RunValmod for an
  /// uncertified length.
  static void RecordValmodFallback();

  /// Records one artifact-catalog lookup outcome.
  static void RecordCatalogLookup(bool hit);

  /// Records one resident-artifact eviction from the catalog LRU.
  static void RecordCatalogEviction();

  /// Records one cold job coalesced onto an identical in-flight
  /// computation (a Singleflight follower; the STOMP it did not pay).
  static void RecordCoalescedJob();

  /// Returns a consistent-enough copy of all counters (each field is an
  /// independent relaxed load).
  static CountersSnapshot Snapshot();

  /// Resets every counter to zero. Test-only: racing recorders may survive
  /// into the zeroed state.
  static void Reset();
};

}  // namespace obs
}  // namespace valmod

#endif  // VALMOD_OBS_COUNTERS_H_
