#include "obs/slow_query.h"

#include <cstdio>

#include "obs/log.h"

namespace valmod {
namespace obs {

SlowQueryLog::SlowQueryLog(double threshold_ms)
    : threshold_ms_(threshold_ms) {}

bool SlowQueryLog::MaybeLog(const SlowQueryRecord& record,
                            const StageRecorder& stages) const {
  if (disabled()) return false;
  if (record.elapsed_us <= threshold_ms_ * 1e3) return false;
  LogEvent event(LogLevel::kWarn, "slow_query");
  event.Str("type", record.query_type)
      .Str("dataset", record.dataset)
      .Int("n", record.n)
      .Int("len_min", record.len_min)
      .Int("len_max", record.len_max)
      .Int("p", record.p)
      .Int("k", record.k)
      .Int("priority", record.priority)
      .Bool("cached", record.cached)
      .Bool("ok", record.ok)
      .Num("elapsed_us", record.elapsed_us)
      .Num("threshold_ms", threshold_ms_);
  if (!record.ok) event.Str("error_code", record.error_code);
  event.Raw("stages", StagesJson(stages));
  return true;
}

std::string StagesJson(const StageRecorder& stages) {
  std::string out;
  out.reserve(stages.stages().size() * 48 + 16);
  out.push_back('[');
  bool first = true;
  for (const StageRecord& stage : stages.stages()) {
    if (!first) out.push_back(',');
    first = false;
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"stage\":\"%s\",\"us\":%.3f,\"depth\":%d}",
                  stage.name == nullptr ? "" : stage.name, stage.dur_us,
                  stage.depth);
    out.append(buffer);
  }
  if (stages.dropped() > 0) {
    if (!first) out.push_back(',');
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "{\"dropped\":%zu}",
                  stages.dropped());
    out.append(buffer);
  }
  out.push_back(']');
  return out;
}

}  // namespace obs
}  // namespace valmod
