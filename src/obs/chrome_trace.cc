#include "obs/chrome_trace.h"

#include <cinttypes>
#include <cstdio>

namespace valmod {
namespace obs {

namespace {

// Span names are lint-enforced snake_case literals, so no JSON escaping is
// needed; defend anyway against a rogue literal reaching a viewer.
void AppendEscaped(std::string* out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out->append(buffer);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out.append("{\"traceEvents\":[");
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    AppendEscaped(&out, event.name == nullptr ? "" : event.name);
    char buffer[160];
    // trace_event times are microseconds; keep nanosecond precision with
    // three decimals so adjacent spans never collapse to zero width.
    std::snprintf(buffer, sizeof(buffer),
                  "\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%" PRId64 ".%03d,\"dur\":%" PRId64 ".%03d,"
                  "\"args\":{\"depth\":%d}}",
                  event.tid, event.start_ns / 1000,
                  static_cast<int>(((event.start_ns % 1000) + 1000) % 1000),
                  event.dur_ns / 1000,
                  static_cast<int>(((event.dur_ns % 1000) + 1000) % 1000),
                  event.depth);
    out.append(buffer);
  }
  out.append("],\"displayTimeUnit\":\"ms\"}");
  return out;
}

}  // namespace obs
}  // namespace valmod
