#ifndef VALMOD_OBS_SLOW_QUERY_H_
#define VALMOD_OBS_SLOW_QUERY_H_

#include <cstdint>
#include <string>

#include "obs/trace.h"

namespace valmod {
namespace obs {

/// Everything the slow-query log reports about one request: the query
/// parameters, its outcome, total latency, and the stage timings captured
/// by the request's StageRecorder (the flattened span tree).
struct SlowQueryRecord {
  std::string query_type;
  std::string dataset;
  std::int64_t n = 0;
  std::int64_t len_min = 0;
  std::int64_t len_max = 0;
  std::int64_t p = 0;
  std::int64_t k = 0;
  int priority = 0;
  bool cached = false;
  bool ok = true;
  std::string error_code;
  double elapsed_us = 0.0;
};

/// Threshold-gated structured slow-query log. Requests slower than the
/// configured threshold emit one kWarn "slow_query" JSON line with the
/// query parameters and the request's stage timings. A threshold <= 0
/// disables logging entirely. Thread-safe (stateless besides the
/// immutable threshold).
class SlowQueryLog {
 public:
  /// Creates a log that fires for requests taking longer than
  /// `threshold_ms` milliseconds (<= 0 disables).
  explicit SlowQueryLog(double threshold_ms);

  /// Logs `record` (with `stages` rendered as a JSON array) if its
  /// elapsed_us exceeds the threshold; returns true when a line was
  /// emitted.
  bool MaybeLog(const SlowQueryRecord& record,
                const StageRecorder& stages) const;

  /// The configured threshold in milliseconds.
  double threshold_ms() const { return threshold_ms_; }

  /// True when the threshold disables logging.
  bool disabled() const { return threshold_ms_ <= 0.0; }

 private:
  double threshold_ms_;
};

/// Renders a StageRecorder as a JSON array of {"stage","us","depth"}
/// objects (plus a trailing {"dropped":N} object when stages overflowed) —
/// the "stages" payload of the slow-query line, also reusable by tools.
std::string StagesJson(const StageRecorder& stages);

}  // namespace obs
}  // namespace valmod

#endif  // VALMOD_OBS_SLOW_QUERY_H_
