#ifndef VALMOD_OBS_CHROME_TRACE_H_
#define VALMOD_OBS_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "obs/trace.h"

namespace valmod {
namespace obs {

/// Renders collected spans as Chrome trace_event JSON: an object with a
/// "traceEvents" array of phase-"X" (complete) events, one per span, with
/// microsecond ts/dur and the span depth under "args". The output loads in
/// chrome://tracing and Perfetto. Deterministic: events render in input
/// order, numbers with fixed formatting.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

}  // namespace obs
}  // namespace valmod

#endif  // VALMOD_OBS_CHROME_TRACE_H_
