// The entomology case study of Figure 1 / Section 9.1: an Asian citrus
// psyllid's Electrical Penetration Graph contains two semantically
// different behaviours of *different* characteristic lengths — a ~10 s
// probing pattern and a ~12 s xylem-ingestion ("sucking") pattern. A
// fixed-length motif search shows only one of them; VALMOD's
// variable-length search surfaces both.
//
//   ./epg_case_study [--n=12000] [--seed=42]

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/ranking.h"
#include "core/valmod.h"
#include "datasets/epg.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using valmod::EpgEvent;
using valmod::EpgSeries;
using valmod::Index;

/// Ground-truth label of a window, from the generator's event log.
std::string LabelWindow(const EpgSeries& epg, Index offset, Index len) {
  for (const EpgEvent& e : epg.events) {
    const Index lo = std::max(offset, e.offset);
    const Index hi = std::min(offset + len, e.offset + e.length);
    if (hi - lo > len / 2) {
      return e.kind == EpgEvent::Kind::kProbing ? "probing" : "ingestion";
    }
  }
  return "baseline";
}

/// A tiny ASCII sketch of a subsequence (10 buckets, '-'..'#').
std::string Sketch(const valmod::Series& values, Index offset, Index len) {
  double lo = values[static_cast<std::size_t>(offset)];
  double hi = lo;
  for (Index k = 0; k < len; ++k) {
    const double v = values[static_cast<std::size_t>(offset + k)];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const char levels[] = " .:-=+*#%@";
  std::string out;
  for (Index b = 0; b < 40; ++b) {
    const Index at = offset + b * len / 40;
    const double v = values[static_cast<std::size_t>(at)];
    const double frac = hi > lo ? (v - lo) / (hi - lo) : 0.0;
    out += levels[static_cast<int>(frac * 9.0)];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);

  EpgOptions epg_options;
  epg_options.n = cli.GetIndex("n", 12000);
  epg_options.seed = static_cast<std::uint64_t>(cli.GetIndex("seed", 42));
  epg_options.probing_instances = 5;
  epg_options.ingestion_instances = 5;
  const EpgSeries epg = GenerateEpg(epg_options);
  std::printf(
      "EPG recording: %lld samples at %.0f Hz; probing motif ~%lld samples "
      "(10 s), ingestion motif ~%lld samples (12 s).\n",
      static_cast<long long>(epg.values.size()), epg_options.sample_rate,
      static_cast<long long>(epg.probing_length),
      static_cast<long long>(epg.ingestion_length));

  // Variable-length search across both behaviour scales.
  ValmodOptions options;
  options.len_min = 90;
  options.len_max = 130;
  options.p = 10;
  const ValmodResult result = RunValmod(epg.values, options);

  const std::vector<RankedPair> top = SelectTopKPairs(result.valmp, 4);
  Table table({"rank", "length", "seconds", "offset a", "offset b",
               "norm dist", "ground truth"});
  for (std::size_t r = 0; r < top.size(); ++r) {
    const RankedPair& pair = top[r];
    table.AddRow({Table::Int(static_cast<long long>(r + 1)),
                  Table::Int(pair.length),
                  Table::Num(static_cast<double>(pair.length) /
                                 epg_options.sample_rate,
                             1),
                  Table::Int(pair.off1), Table::Int(pair.off2),
                  Table::Num(pair.norm_distance, 4),
                  LabelWindow(epg, pair.off1, pair.length)});
  }
  std::printf("\nTop variable-length motifs (disjoint, ranked by "
              "length-normalized distance):\n%s\n",
              table.Render().c_str());

  // Show the discovered waveforms.
  for (std::size_t r = 0; r < std::min<std::size_t>(top.size(), 2); ++r) {
    const RankedPair& pair = top[r];
    std::printf("motif %zu occurrence 1: %s\n", r + 1,
                Sketch(epg.values, pair.off1, pair.length).c_str());
    std::printf("motif %zu occurrence 2: %s\n\n", r + 1,
                Sketch(epg.values, pair.off2, pair.length).c_str());
  }

  std::printf(
      "The paper's point: an entomologist running a single-length search at "
      "12 s\nwould only see the ingestion behaviour and miss the probing "
      "pattern entirely.\n");
  return 0;
}
