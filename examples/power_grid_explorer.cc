// Exploratory analysis of an electric-load series (the GAP dataset of the
// paper's evaluation): variable-length motif sets reveal recurring
// consumption routines; variable-length discords (the paper's future-work
// extension) flag anomalous days. Demonstrates the exploratory loop the
// paper motivates — sweep the radius factor D cheaply after a single
// VALMOD pass.
//
//   ./power_grid_explorer [--n=6000] [--len_min=96] [--len_max=160]

#include <cstdio>

#include "core/discords.h"
#include "core/motif_sets.h"
#include "core/valmod.h"
#include "datasets/generators.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);
  const Index n = cli.GetIndex("n", 6000);
  // With 144 samples per simulated day, [96, 160] spans 2/3 of a day to a
  // bit over one day: daily-routine scale.
  const Index len_min = cli.GetIndex("len_min", 96);
  const Index len_max = cli.GetIndex("len_max", 160);

  const Series series = GenerateGap(n, /*seed=*/7);
  std::printf("GAP-style load series: %lld points (~%.0f days at 144 "
              "samples/day)\n",
              static_cast<long long>(n), static_cast<double>(n) / 144.0);

  WallTimer timer;
  ValmodOptions options;
  options.len_min = len_min;
  options.len_max = len_max;
  options.p = 10;
  const ValmodResult result = RunValmod(series, options);
  std::printf("VALMOD over [%lld, %lld]: %.2f s, %lld full profile passes\n",
              static_cast<long long>(len_min),
              static_cast<long long>(len_max), timer.Seconds(),
              static_cast<long long>(result.full_mp_computations));

  // The exploratory loop: after the single VALMOD pass, re-extract motif
  // sets under several radius factors essentially for free.
  for (const double d : {2.0, 4.0, 6.0}) {
    MotifSetOptions set_options;
    set_options.k = 3;
    set_options.radius_factor = d;
    timer.Reset();
    const std::vector<MotifSet> sets =
        ComputeVariableLengthMotifSets(series, result, set_options);
    std::printf("\nradius factor D=%.0f (extraction took %.4f s):\n", d,
                timer.Seconds());
    Table table({"set", "length", "days span", "frequency", "offsets"});
    for (std::size_t s = 0; s < sets.size(); ++s) {
      std::string offsets;
      for (std::size_t o = 0; o < sets[s].occurrences.size(); ++o) {
        if (o > 0) offsets += ",";
        offsets += Table::Int(sets[s].occurrences[o]);
        if (o >= 5) {
          offsets += ",...";
          break;
        }
      }
      table.AddRow({Table::Int(static_cast<long long>(s + 1)),
                    Table::Int(sets[s].seed.length),
                    Table::Num(static_cast<double>(sets[s].seed.length) /
                                   144.0,
                               2),
                    Table::Int(sets[s].frequency()), offsets});
    }
    std::printf("%s", table.Render().c_str());
  }

  // Discord extension: the most anomalous window per length, best overall.
  timer.Reset();
  const VariableLengthDiscords discords =
      FindVariableLengthDiscords(series, len_min, len_min + 8);
  std::printf(
      "\nVariable-length discords over [%lld, %lld] (%.2f s): best at offset "
      "%lld, length %lld (day %.1f), nn-distance %.3f\n",
      static_cast<long long>(len_min), static_cast<long long>(len_min + 8),
      timer.Seconds(), static_cast<long long>(discords.best.offset),
      static_cast<long long>(discords.best.length),
      static_cast<double>(discords.best.offset) / 144.0,
      discords.best.distance);
  return 0;
}
