// Online motif monitoring over a live stream: the deployment shape of
// src/stream. Ticks arrive from a file (one value per line), from stdin
// ("-"), or from a synthetic registry dataset; the monitor appends each
// tick into an OnlineMotifTracker and periodically reports the current
// best variable-length motif pair and top discord of the sliding window.
// State can be checkpointed on exit and restored on the next run, so a
// restarted monitor resumes without replaying the stream.
//
//   ./stream_monitor --synthetic=PLANTED --ticks=4096 --len_min=24
//                    --len_max=40 --len_step=8 [--capacity=1024]
//                    [--report_every=512] [--top_k=3]
//                    [--checkpoint=FILE] [--restore=FILE]
//   ./stream_monitor INPUT.txt --len_min=64 --len_max=96
//   tail -f ticks.txt | ./stream_monitor - --len_min=64 --len_max=96

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "datasets/io.h"
#include "datasets/registry.h"
#include "stream/checkpoint.h"
#include "stream/online_motif_tracker.h"
#include "util/cli.h"

namespace {

int Fail(const valmod::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void PrintUsage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s INPUT.txt|- --len_min=L --len_max=U [--len_step=1]\n"
      "          [--capacity=N] [--report_every=512] [--top_k=3]\n"
      "          [--checkpoint=FILE] [--restore=FILE]\n"
      "       %s --synthetic=PLANTED|ECG|... --ticks=4096 --len_min=L "
      "--len_max=U\n",
      prog, prog);
}

void Report(const valmod::OnlineMotifTracker& tracker) {
  using valmod::Index;
  const Index base = tracker.dropped();
  const valmod::RankedPair best = tracker.BestPair();
  if (best.off1 == valmod::kNoNeighbor) {
    std::printf("tick %lld: warming up (window %lld)\n",
                static_cast<long long>(tracker.total_appended()),
                static_cast<long long>(tracker.size()));
    return;
  }
  std::printf(
      "tick %lld: motif len=%lld at %lld/%lld norm_dist=%.4f",
      static_cast<long long>(tracker.total_appended()),
      static_cast<long long>(best.length),
      static_cast<long long>(base + best.off1),
      static_cast<long long>(base + best.off2), best.norm_distance);
  const std::vector<valmod::Discord> discords = tracker.TopDiscords(1);
  if (!discords.empty()) {
    std::printf("  discord len=%lld at %lld",
                static_cast<long long>(discords[0].length),
                static_cast<long long>(base + discords[0].offset));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);

  OnlineTrackerOptions options;
  options.length_min = cli.GetIndex("len_min", 24);
  options.length_max = cli.GetIndex("len_max", 40);
  options.length_step = cli.GetIndex("len_step", 8);
  options.capacity = cli.GetIndex("capacity", 1024);
  if (options.length_min < 2 || options.length_max < options.length_min ||
      options.length_step < 1 ||
      (options.capacity != 0 &&
       options.capacity < 2 * options.length_max)) {
    PrintUsage(cli.ProgramName().c_str());
    return 1;
  }
  const Index report_every = cli.GetIndex("report_every", 512);
  const Index top_k = cli.GetIndex("top_k", 3);

  OnlineMotifTracker tracker(options);
  if (cli.Has("restore")) {
    const std::string from = cli.GetString("restore", "");
    if (const Status s = ReadCheckpoint(from, &tracker); !s.ok()) {
      return Fail(s);
    }
    std::printf("restored %s at tick %lld (window %lld)\n", from.c_str(),
                static_cast<long long>(tracker.total_appended()),
                static_cast<long long>(tracker.size()));
  }

  // Feed the ticks.
  if (cli.Has("synthetic")) {
    const Index ticks = cli.GetIndex("ticks", 4096);
    Series data;
    if (const Status s =
            GenerateByName(cli.GetString("synthetic", "PLANTED"), ticks,
                           &data);
        !s.ok()) {
      return Fail(s);
    }
    for (std::size_t i = 0; i < data.size(); ++i) {
      tracker.Append(data[i]);
      if (tracker.total_appended() % report_every == 0) Report(tracker);
    }
  } else {
    if (cli.Positional().empty()) {
      PrintUsage(cli.ProgramName().c_str());
      return 1;
    }
    const std::string input = cli.Positional()[0];
    if (input == "-") {
      // Line-at-a-time from stdin: the live-monitor shape.
      std::string line;
      while (std::getline(std::cin, line)) {
        std::istringstream stream(line);
        double value = 0.0;
        if (!(stream >> value)) continue;  // Skip blank/comment lines.
        tracker.Append(value);
        if (tracker.total_appended() % report_every == 0) Report(tracker);
      }
    } else {
      Series data;
      if (const Status s = ReadSeriesText(input, &data); !s.ok()) {
        return Fail(s);
      }
      for (std::size_t i = 0; i < data.size(); ++i) {
        tracker.Append(data[i]);
        if (tracker.total_appended() % report_every == 0) Report(tracker);
      }
    }
  }

  // Final summary over the live window.
  std::printf("\nfinal window: %lld points (ticks %lld..%lld)\n",
              static_cast<long long>(tracker.size()),
              static_cast<long long>(tracker.dropped()),
              static_cast<long long>(tracker.total_appended() - 1));
  const Index base = tracker.dropped();
  const std::vector<RankedPair> pairs = tracker.TopKPairs(top_k);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    std::printf("motif %zu: len=%lld at %lld/%lld dist=%.4f norm=%.4f\n",
                i + 1, static_cast<long long>(pairs[i].length),
                static_cast<long long>(base + pairs[i].off1),
                static_cast<long long>(base + pairs[i].off2),
                pairs[i].distance, pairs[i].norm_distance);
  }
  const std::vector<Discord> discords = tracker.TopDiscords(top_k);
  for (std::size_t i = 0; i < discords.size(); ++i) {
    std::printf("discord %zu: len=%lld at %lld dist=%.4f\n", i + 1,
                static_cast<long long>(discords[i].length),
                static_cast<long long>(base + discords[i].offset),
                discords[i].distance);
  }

  if (cli.Has("checkpoint")) {
    const std::string to = cli.GetString("checkpoint", "");
    if (const Status s = WriteCheckpoint(tracker, to); !s.ok()) {
      return Fail(s);
    }
    std::printf("checkpoint written to %s\n", to.c_str());
  }
  return 0;
}
