// The paper's second case-study domain: seismology. Repeating earthquakes
// ("repeaters") are near-identical waveforms recurring at the same fault
// patch; finding them is a motif-discovery problem, and — as the paper
// argues for exactness — seismologists cannot afford approximate answers.
// Two repeater families of *different durations* are embedded in
// microseismic noise; a variable-length search recovers both and a
// variable-length discord flags the one-off event.
//
//   ./seismology_repeaters [--n=20000] [--seed=3]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/motif_sets.h"
#include "core/ranking.h"
#include "core/valmod.h"
#include "datasets/generators.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using valmod::Index;

/// Which ground-truth family (0/1, or -1 for none) a window mostly covers.
int FamilyOfWindow(const std::vector<Index>& offsets,
                   const std::vector<int>& families, Index window_offset,
                   Index window_len) {
  for (std::size_t e = 0; e < offsets.size(); ++e) {
    const Index ev_len = families[e] == 0 ? valmod::kSeismicFamilyALength
                                          : valmod::kSeismicFamilyBLength;
    const Index lo = std::max(window_offset, offsets[e]);
    const Index hi = std::min(window_offset + window_len, offsets[e] + ev_len);
    if (hi - lo > window_len / 2) return families[e];
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);
  const Index n = cli.GetIndex("n", 20000);

  std::vector<Index> event_offsets;
  std::vector<int> event_families;
  const Series series =
      GenerateSeismic(n, static_cast<std::uint64_t>(cli.GetIndex("seed", 3)),
                      &event_offsets, &event_families);
  std::printf(
      "Seismogram: %lld samples, %zu embedded events (family A = %lld "
      "samples, family B = %lld samples)\n",
      static_cast<long long>(n), event_offsets.size(),
      static_cast<long long>(kSeismicFamilyALength),
      static_cast<long long>(kSeismicFamilyBLength));

  // Search across both family durations.
  ValmodOptions options;
  options.len_min = 100;
  options.len_max = 200;
  options.p = 10;
  const ValmodResult result = RunValmod(series, options);

  const std::vector<RankedPair> top = SelectTopKPairs(result.valmp, 4);
  Table table({"rank", "length", "offset a", "offset b", "norm dist",
               "family"});
  for (std::size_t r = 0; r < top.size(); ++r) {
    const int family =
        FamilyOfWindow(event_offsets, event_families, top[r].off1,
                       top[r].length);
    table.AddRow({Table::Int(static_cast<long long>(r + 1)),
                  Table::Int(top[r].length), Table::Int(top[r].off1),
                  Table::Int(top[r].off2),
                  Table::Num(top[r].norm_distance, 4),
                  family == 0   ? "A (repeater)"
                  : family == 1 ? "B (repeater)"
                                : "background"});
  }
  std::printf("\nTop variable-length motifs:\n%s\n", table.Render().c_str());

  // Extend the best pairs to full repeater catalogues.
  MotifSetOptions set_options;
  set_options.k = 2;
  set_options.radius_factor = 3.0;
  const std::vector<MotifSet> sets =
      ComputeVariableLengthMotifSets(series, result, set_options);
  for (std::size_t s = 0; s < sets.size(); ++s) {
    std::printf("repeater catalogue %zu (length %lld): %lld occurrences at",
                s + 1, static_cast<long long>(sets[s].seed.length),
                static_cast<long long>(sets[s].frequency()));
    for (Index off : sets[s].occurrences) {
      std::printf(" %lld", static_cast<long long>(off));
    }
    std::printf("\n");
  }

  std::printf(
      "\nExactness matters here (the paper cites seismological liability):\n"
      "every reported pair is the provably closest at its length, not an\n"
      "approximation.\n");
  return 0;
}
