// Pan-matrix-profile viewer: the exact matrix profile of every length in a
// range, rendered as an ASCII heat map (dark = repetitive at that offset
// and scale). The visual answer to "at which time scales does this series
// repeat itself?" — the paper's future-work extension made tangible.
//
//   ./pan_profile_viewer [--dataset=GAP] [--n=2500] [--len_min=72]
//                        [--len_max=168]

#include <cstdio>

#include "core/pan_profile.h"
#include "datasets/registry.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);
  const std::string dataset = cli.GetString("dataset", "GAP");
  const Index n = cli.GetIndex("n", 2500);
  const Index len_min = cli.GetIndex("len_min", 72);
  const Index len_max = cli.GetIndex("len_max", 168);

  Series series;
  const Status status = GenerateByName(dataset, n, &series);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  WallTimer timer;
  const PanMatrixProfile pan =
      ComputePanMatrixProfile(series, len_min, len_max);
  std::printf(
      "pan matrix profile of %s (n=%lld, lengths %lld..%lld): %.2f s\n\n",
      dataset.c_str(), static_cast<long long>(n),
      static_cast<long long>(len_min), static_cast<long long>(len_max),
      timer.Seconds());
  std::printf("%s\n", pan.RenderAscii(12, 64).c_str());
  std::printf("dark = close nearest neighbour (repetitive region) at that\n"
              "offset (x) and subsequence length (y, top = longest).\n\n");

  // Histogram of "most repetitive length" across offsets.
  const std::vector<Index> best = pan.BestLengthPerOffset();
  std::vector<Index> counts(static_cast<std::size_t>(pan.num_lengths()), 0);
  for (const Index len : best) {
    ++counts[static_cast<std::size_t>(len - pan.len_min())];
  }
  Index top_len = pan.len_min();
  for (Index l = pan.len_min(); l <= pan.len_max(); ++l) {
    if (counts[static_cast<std::size_t>(l - pan.len_min())] >
        counts[static_cast<std::size_t>(top_len - pan.len_min())]) {
      top_len = l;
    }
  }
  std::printf("dominant repetition scale: length %lld (%lld of %zu offsets"
              " pick it as their best length)\n",
              static_cast<long long>(top_len),
              static_cast<long long>(
                  counts[static_cast<std::size_t>(top_len - pan.len_min())]),
              best.size());
  return 0;
}
