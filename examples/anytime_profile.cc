// The anytime property of the matrix profile (Section 2: "in most domains,
// in just O(nc) steps the algorithm converges to what would be the final
// solution"). STAMP evaluates distance profiles in random order and is
// interruptible; this example snapshots the profile-so-far and reports how
// quickly the motif estimate converges to the exact answer.
//
//   ./anytime_profile [--dataset=ECG] [--n=4000] [--len=80]

#include <cstdio>

#include "datasets/registry.h"
#include "mp/stamp.h"
#include "mp/stomp.h"
#include "signal/znorm.h"
#include "util/cli.h"
#include "util/prefix_stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);
  const Index n = cli.GetIndex("n", 4000);
  const Index len = cli.GetIndex("len", 80);

  Series series;
  const Status status =
      GenerateByName(cli.GetString("dataset", "ECG"), n, &series);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const Series centered = CenterSeries(series);
  const PrefixStats stats(centered);

  // Exact reference (STOMP).
  const MotifPair exact = MotifFromProfile(Stomp(centered, stats, len));
  std::printf("exact motif: offsets (%lld, %lld), distance %.4f\n\n",
              static_cast<long long>(exact.a),
              static_cast<long long>(exact.b), exact.distance);

  // Anytime STAMP with snapshots every 5% of the rows.
  const Index n_sub = NumSubsequences(n, len);
  Table table({"rows evaluated", "% of total", "motif estimate",
               "relative error"});
  StampOptions options;
  options.seed = 99;
  options.snapshot_every = n_sub / 20;
  options.snapshot = [&](Index rows_done, const MatrixProfile& so_far) {
    const MotifPair estimate = MotifFromProfile(so_far);
    const double rel_err =
        exact.distance > 0.0
            ? (estimate.distance - exact.distance) / exact.distance
            : 0.0;
    table.AddRow({Table::Int(rows_done),
                  Table::Num(100.0 * static_cast<double>(rows_done) /
                                 static_cast<double>(n_sub),
                             0),
                  Table::Num(estimate.distance, 4),
                  Table::Num(rel_err, 4)});
  };
  Stamp(centered, stats, len, options);
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "The estimate typically reaches the exact motif after a small fraction\n"
      "of the rows — the O(nc) convergence the matrix-profile line relies "
      "on.\n");
  return 0;
}
