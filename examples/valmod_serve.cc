// The motif query service as a standalone TCP server: binds, serves
// VALMOD/1 frames until SIGINT/SIGTERM, then drains gracefully — every
// admitted request still gets its response before the process exits.
//
//   valmod_serve --port=47113 --workers=2 --queue_capacity=64
//       --cache_mb=64 --max_connections=64
//
// Pair it with valmod_query (one-shot client) or the Client library.

#include <csignal>
#include <cstdio>
#include <thread>

#include "obs/log.h"
#include "service/server.h"
#include "util/cli.h"

namespace {

// Signal handlers may only touch lock-free sig_atomic_t storage; the main
// loop polls this and runs the actual (lock-taking) shutdown.
volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);
  if (cli.Has("help")) {
    std::printf(
        "usage: %s [--host=127.0.0.1] [--port=47113] [--workers=N]\n"
        "          [--queue_capacity=64] [--cache_mb=64] [--cache_shards=8]\n"
        "          [--max_connections=64] [--read_timeout_s=30]\n"
        "          [--stomp_threads=1] [--metrics_port=PORT|-1]\n"
        "          [--slow_query_ms=1000] [--catalog_dir=DIR]\n"
        "          [--catalog_shards=8] [--catalog_resident_mb=256]\n"
        "          [--catalog_write=1]\n"
        "Serves VALMOD/1 motif queries over TCP until SIGINT, then drains.\n"
        "An HTTP gateway (GET /metrics, /healthz, /trace/start, /trace/stop)\n"
        "listens on --metrics_port (0 = ephemeral, -1 = disabled); requests\n"
        "slower than --slow_query_ms log one structured warning line.\n"
        "--catalog_dir enables the persisted artifact catalog: cold queries\n"
        "whose artifact was built before (by this process or the offline\n"
        "valmod_catalog tool) are served from disk instead of recomputed.\n",
        cli.ProgramName().c_str());
    return 0;
  }

  ServerOptions options;
  options.host = cli.GetString("host", "127.0.0.1");
  options.port = static_cast<int>(cli.GetIndex("port", 47113));
  options.max_connections =
      static_cast<int>(cli.GetIndex("max_connections", 64));
  options.read_timeout_s = cli.GetDouble("read_timeout_s", 30.0);
  options.engine.workers = static_cast<int>(cli.GetIndex("workers", 0));
  options.engine.queue_capacity = cli.GetIndex("queue_capacity", 64);
  options.engine.cache_bytes =
      static_cast<std::size_t>(cli.GetIndex("cache_mb", 64)) << 20;
  options.engine.cache_shards =
      static_cast<int>(cli.GetIndex("cache_shards", 8));
  options.engine.stomp_threads =
      static_cast<int>(cli.GetIndex("stomp_threads", 1));
  options.metrics_port = static_cast<int>(cli.GetIndex("metrics_port", 0));
  options.engine.slow_query_ms = cli.GetDouble("slow_query_ms", 1000.0);
  options.engine.catalog_dir = cli.GetString("catalog_dir", "");
  options.engine.catalog_shards =
      static_cast<int>(cli.GetIndex("catalog_shards", 8));
  options.engine.catalog_resident_bytes =
      static_cast<std::size_t>(cli.GetIndex("catalog_resident_mb", 256)) << 20;
  options.engine.catalog_write = cli.GetIndex("catalog_write", 1) != 0;

  // The serve binary is an application, not a library: surface info-level
  // structured logs (slow queries are warn-level and show either way).
  valmod::obs::Log::SetMinLevel(valmod::obs::LogLevel::kInfo);

  Server server(options);
  const Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "valmod_serve: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("valmod_serve: listening on %s:%d (workers=%d queue=%lld "
              "cache=%zuMiB)\n",
              options.host.c_str(), server.port(),
              server.engine().options().workers > 0
                  ? server.engine().options().workers
                  : server.engine().executor().workers(),
              static_cast<long long>(options.engine.queue_capacity),
              options.engine.cache_bytes >> 20);
  if (server.engine().artifact_catalog() != nullptr) {
    std::printf("valmod_serve: artifact catalog at %s (%d shards, "
                "%zuMiB resident budget)\n",
                options.engine.catalog_dir.c_str(),
                server.engine().artifact_catalog()->options().shards,
                options.engine.catalog_resident_bytes >> 20);
  }
  if (server.metrics_port() > 0) {
    std::printf("valmod_serve: metrics at http://%s:%d/metrics "
                "(also /healthz, /trace/start, /trace/stop)\n",
                options.host.c_str(), server.metrics_port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("valmod_serve: stop requested, draining in-flight work...\n");
  std::fflush(stdout);
  server.Shutdown();
  std::printf("valmod_serve: drained cleanly (%lld connections served, "
              "%lld refused)\n",
              static_cast<long long>(server.connections_accepted()),
              static_cast<long long>(server.connections_refused()));
  return 0;
}
