// Quickstart: the 60-second tour of the public API.
//
// 1. Build (or load) a data series.
// 2. Run VALMOD over a length range.
// 3. Read the per-length motif pairs, the VALMP, the cross-length ranking,
//    and the motif sets.
//
//   ./quickstart [--n=4000] [--len_min=48] [--len_max=80] [--p=10]

#include <cstdio>

#include "core/motif_sets.h"
#include "core/ranking.h"
#include "core/valmod.h"
#include "datasets/generators.h"
#include "signal/znorm.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);
  const Index n = cli.GetIndex("n", 4000);
  const Index len_min = cli.GetIndex("len_min", 48);
  const Index len_max = cli.GetIndex("len_max", 80);

  // A synthetic ECG: quasi-periodic heartbeats, so motifs exist at the
  // beat scale. Swap in ReadSeriesText(...) to analyze your own data.
  const Series series = GenerateEcg(n, /*seed=*/42);
  std::printf("Series: synthetic ECG, %lld points\n",
              static_cast<long long>(series.size()));

  // Run VALMOD: exact motif pair for EVERY length in [len_min, len_max].
  ValmodOptions options;
  options.len_min = len_min;
  options.len_max = len_max;
  options.p = cli.GetIndex("p", 10);
  const ValmodResult result = RunValmod(series, options);

  // 1. Per-length motifs (Problem 1).
  Table per_length({"length", "offset a", "offset b", "zdist",
                    "norm dist"});
  for (const MotifPair& motif : result.per_length_motifs) {
    if (!motif.valid()) continue;
    per_length.AddRow({Table::Int(motif.length), Table::Int(motif.a),
                       Table::Int(motif.b), Table::Num(motif.distance, 3),
                       Table::Num(LengthNormalize(motif.distance,
                                                  motif.length),
                                  4)});
  }
  std::printf("\nExact motif pair per length:\n%s", per_length.Render().c_str());

  // 2. The overall winner under the sqrt(1/len) ranking.
  const MotifPair best = result.BestOverall();
  std::printf(
      "\nBest motif across all lengths: offsets (%lld, %lld), length %lld, "
      "z-distance %.3f\n",
      static_cast<long long>(best.a), static_cast<long long>(best.b),
      static_cast<long long>(best.length), best.distance);

  // 3. Top-K ranked pairs (disjoint) and their motif sets (Problem 2).
  MotifSetOptions set_options;
  set_options.k = 3;
  set_options.radius_factor = 3.0;
  const std::vector<MotifSet> sets =
      ComputeVariableLengthMotifSets(series, result, set_options);
  std::printf("\nTop %zu variable-length motif sets (radius = %.1f x pair "
              "distance):\n",
              sets.size(), set_options.radius_factor);
  for (std::size_t s = 0; s < sets.size(); ++s) {
    std::printf("  set %zu: length %lld, %lld occurrences at offsets [",
                s + 1, static_cast<long long>(sets[s].seed.length),
                static_cast<long long>(sets[s].frequency()));
    for (std::size_t o = 0; o < sets[s].occurrences.size(); ++o) {
      std::printf("%s%lld", o > 0 ? ", " : "",
                  static_cast<long long>(sets[s].occurrences[o]));
    }
    std::printf("]\n");
  }

  // Algorithm internals: how much work the lower bound saved.
  Index certified = 0;
  Index total = 0;
  for (std::size_t k = 1; k < result.length_stats.size(); ++k) {
    certified += result.length_stats[k].valid_count;
    total += result.length_stats[k].n_profiles;
  }
  std::printf(
      "\nVALMOD internals: %lld full matrix-profile passes for %zu lengths; "
      "%.1f%% of per-length profiles certified from p=%lld retained "
      "entries.\n",
      static_cast<long long>(result.full_mp_computations),
      result.per_length_motifs.size(),
      total > 0 ? 100.0 * static_cast<double>(certified) /
                      static_cast<double>(total)
                : 0.0,
      static_cast<long long>(options.p));
  return 0;
}
