// A command-line motif discovery tool over user-supplied data: the shape a
// downstream user would actually deploy. Reads a series from a text file
// (one value per line, or comma/whitespace separated), runs VALMOD, and
// writes the per-length motifs and (optionally) the full VALMP as CSV.
//
//   ./valmod_cli INPUT.txt --len_min=64 --len_max=96 [--p=10] [--k=5]
//                [--radius=3.0] [--valmp_out=valmp.csv]
//                [--profiles_out=profiles.csv]  # full per-length profiles
//                [--generate=ECG --n=4096]      # instead of INPUT.txt

#include <cstdio>
#include <fstream>

#include "core/motif_sets.h"
#include "core/ranking.h"
#include "core/serialize.h"
#include "core/valmod.h"
#include "datasets/io.h"
#include "datasets/registry.h"
#include "signal/znorm.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

int Fail(const valmod::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void PrintUsage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s INPUT.txt --len_min=L --len_max=U [--p=10] [--k=5]\n"
      "          [--radius=3.0] [--valmp_out=FILE.csv]\n"
      "       %s --generate=ECG|GAP|ASTRO|EMG|EEG --n=4096 --len_min=L "
      "--len_max=U\n",
      prog, prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);

  Series series;
  if (cli.Has("generate")) {
    const Status status = GenerateByName(cli.GetString("generate", "ECG"),
                                         cli.GetIndex("n", 4096), &series);
    if (!status.ok()) return Fail(status);
  } else if (!cli.Positional().empty()) {
    const Status status = ReadSeriesText(cli.Positional()[0], &series);
    if (!status.ok()) return Fail(status);
  } else {
    PrintUsage(cli.ProgramName().c_str());
    return 2;
  }

  const Index len_min = cli.GetIndex("len_min", 0);
  const Index len_max = cli.GetIndex("len_max", 0);
  if (len_min < 4 || len_max < len_min ||
      static_cast<std::size_t>(len_max + ExclusionZone(len_max)) >
          series.size()) {
    std::fprintf(stderr,
                 "error: need 4 <= len_min <= len_max and a series of at "
                 "least len_max * 1.5 points (got %zu)\n",
                 series.size());
    PrintUsage(cli.ProgramName().c_str());
    return 2;
  }

  ValmodOptions options;
  options.len_min = len_min;
  options.len_max = len_max;
  options.p = cli.GetIndex("p", 10);
  // The paper's future-work extension: emit the complete matrix profile of
  // every length (slower: one full pass per length).
  options.emit_per_length_profiles = cli.Has("profiles_out");
  if (cli.Has("budget_seconds")) {
    options.deadline = Deadline::After(cli.GetDouble("budget_seconds", 60.0));
  }

  WallTimer timer;
  const ValmodResult result = RunValmod(series, options);
  std::printf("VALMOD finished in %.2f s over %zu lengths%s\n",
              timer.Seconds(), result.per_length_motifs.size(),
              result.dnf ? " (budget exhausted: partial results)" : "");

  Table table({"length", "offset a", "offset b", "zdist", "norm dist"});
  for (const MotifPair& motif : result.per_length_motifs) {
    if (!motif.valid()) continue;
    table.AddRow({Table::Int(motif.length), Table::Int(motif.a),
                  Table::Int(motif.b), Table::Num(motif.distance, 4),
                  Table::Num(LengthNormalize(motif.distance, motif.length),
                             5)});
  }
  std::printf("%s", table.Render().c_str());

  const Index k = cli.GetIndex("k", 5);
  MotifSetOptions set_options;
  set_options.k = k;
  set_options.radius_factor = cli.GetDouble("radius", 3.0);
  const std::vector<MotifSet> sets =
      ComputeVariableLengthMotifSets(series, result, set_options);
  std::printf("\ntop-%lld motif sets (D=%.1f):\n",
              static_cast<long long>(k), set_options.radius_factor);
  for (std::size_t s = 0; s < sets.size(); ++s) {
    std::printf("  #%zu length=%lld frequency=%lld radius=%.4f\n", s + 1,
                static_cast<long long>(sets[s].seed.length),
                static_cast<long long>(sets[s].frequency()), sets[s].radius);
  }

  if (cli.Has("valmp_out")) {
    const std::string path = cli.GetString("valmp_out", "valmp.csv");
    if (const Status status = WriteValmpCsv(result.valmp, path); !status.ok()) {
      return Fail(status);
    }
    std::printf("\nVALMP written to %s\n", path.c_str());
  }

  if (cli.Has("profiles_out")) {
    const std::string path = cli.GetString("profiles_out", "profiles.csv");
    std::ofstream out(path);
    if (!out) return Fail(Status::IoError("cannot write " + path));
    out << "length,offset,distance,neighbor\n";
    for (const MatrixProfile& profile : result.per_length_profiles) {
      for (Index i = 0; i < profile.size(); ++i) {
        const std::size_t s = static_cast<std::size_t>(i);
        if (profile.indices[s] == kNoNeighbor) continue;
        out << profile.subsequence_length << ',' << i << ','
            << profile.distances[s] << ',' << profile.indices[s] << '\n';
      }
    }
    std::printf("per-length matrix profiles written to %s\n", path.c_str());
  }
  return 0;
}
