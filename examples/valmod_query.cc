// One-shot client for the motif query service (valmod_serve): sends one
// query over TCP, prints the answer, and exits 0 on success. Exercises
// every query type the protocol defines:
//
//   valmod_query --port=47113 --type=motif --dataset=PLANTED --n=4096
//       --len_min=64 --len_max=96
//   valmod_query --port=47113 --type=stats

#include <cstdio>

#include "service/client.h"
#include "service/protocol.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);
  if (cli.Has("help")) {
    std::printf(
        "usage: %s [--host=127.0.0.1] [--port=47113] [--timeout_s=30]\n"
        "          --type=motif|topk|discord|profile|stats\n"
        "          [--dataset=PLANTED --n=4096] [--len_min=64 --len_max=96]\n"
        "          [--k=3] [--p=10] [--deadline_ms=0] [--priority=1]\n"
        "          [--no_cache] [--json]\n",
        cli.ProgramName().c_str());
    return 0;
  }

  Request request;
  const std::string type_name = cli.GetString("type", "stats");
  Status status = ParseQueryType(type_name, &request.type);
  if (!status.ok()) {
    std::fprintf(stderr, "valmod_query: %s\n", status.ToString().c_str());
    return 2;
  }
  request.id = cli.GetIndex("id", 1);
  request.dataset = cli.GetString("dataset", "PLANTED");
  request.n = cli.GetIndex("n", 4096);
  request.len_min = cli.GetIndex("len_min", 64);
  request.len_max = cli.GetIndex("len_max", 96);
  request.k = cli.GetIndex("k", 3);
  request.p = cli.GetIndex("p", 10);
  request.deadline_ms = cli.GetDouble("deadline_ms", 0.0);
  request.priority = static_cast<int>(cli.GetIndex("priority", 1));
  request.no_cache = cli.GetBool("no_cache", false);

  Client client;
  status = client.Connect(cli.GetString("host", "127.0.0.1"),
                          static_cast<int>(cli.GetIndex("port", 47113)),
                          cli.GetDouble("timeout_s", 30.0));
  if (!status.ok()) {
    std::fprintf(stderr, "valmod_query: %s\n", status.ToString().c_str());
    return 2;
  }
  Response response;
  status = client.Query(request, &response);
  if (!status.ok()) {
    std::fprintf(stderr, "valmod_query: %s\n", status.ToString().c_str());
    return 2;
  }
  if (cli.GetBool("json", false)) {
    std::printf("%s\n", response.ToJson().Serialize().c_str());
  }
  if (!response.ok) {
    std::fprintf(stderr, "valmod_query: server error %s: %s\n",
                 response.error_code.c_str(),
                 response.error_message.c_str());
    return 1;
  }

  if (request.type == QueryType::kStats) {
    std::printf("%s", response.stats_text.c_str());
    return 0;
  }
  std::printf("%s over %s lengths [%lld, %lld]: %s in %.1f us "
              "(fingerprint %s)\n",
              QueryTypeName(request.type),
              request.dataset.c_str(),
              static_cast<long long>(request.len_min),
              static_cast<long long>(request.len_max),
              response.cached ? "cache hit" : "computed",
              response.elapsed_us, response.fingerprint.c_str());
  if (response.has_best_motif) {
    std::printf("  best motif: offsets (%lld, %lld) length %lld "
                "distance %.6f (normalized %.6f)\n",
                static_cast<long long>(response.best_motif.off1),
                static_cast<long long>(response.best_motif.off2),
                static_cast<long long>(response.best_motif.length),
                response.best_motif.distance,
                response.best_motif.norm_distance);
  }
  if (response.has_best_discord) {
    std::printf("  best discord: offset %lld length %lld distance %.6f "
                "(normalized %.6f)\n",
                static_cast<long long>(response.best_discord.offset),
                static_cast<long long>(response.best_discord.length),
                response.best_discord.distance, response.best_discord_norm);
  }
  for (const LengthResult& lr : response.lengths) {
    std::printf("  len %lld:", static_cast<long long>(lr.length));
    if (lr.has_motif && lr.motif.valid()) {
      std::printf(" motif (%lld, %lld) d=%.4f",
                  static_cast<long long>(lr.motif.a),
                  static_cast<long long>(lr.motif.b), lr.motif.distance);
    }
    if (lr.has_top_k) {
      std::printf(" top_k=%zu", lr.top_k.size());
    }
    if (lr.has_discord && lr.discord.valid()) {
      std::printf(" discord @%lld d=%.4f",
                  static_cast<long long>(lr.discord.offset),
                  lr.discord.distance);
    }
    if (lr.has_profile) {
      std::printf(" profile min/mean/max %.4f/%.4f/%.4f", lr.profile_min,
                  lr.profile_mean, lr.profile_max);
    }
    std::printf("\n");
  }
  return 0;
}
