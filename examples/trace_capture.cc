// Records one traced session end to end and writes it as Chrome trace_event
// JSON — open the file in Perfetto (ui.perfetto.dev) or chrome://tracing to
// see the span tree: the service stages around a top-k query, the VALMOD
// driver with its per-length sub-MP updates, and the STOMP kernel chunks.
//
//   trace_capture --dataset=PLANTED --n=4096 --len_min=24 --len_max=32
//       --out=valmod_trace.json
//
// With a -DVALMOD_TRACING=OFF build the file is still valid JSON but holds
// zero events (spans compile away); the tool says so and exits 0.

#include <cstdio>
#include <string>

#include "core/valmod.h"
#include "datasets/registry.h"
#include "obs/chrome_trace.h"
#include "obs/trace.h"
#include "service/engine.h"
#include "service/protocol.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);
  if (cli.Has("help")) {
    std::printf(
        "usage: %s [--dataset=PLANTED] [--n=4096] [--len_min=24]\n"
        "          [--len_max=32] [--k=3] [--out=valmod_trace.json]\n"
        "Runs one traced top-k service query plus a RunValmod call and\n"
        "writes the session as Chrome trace_event JSON for Perfetto.\n",
        cli.ProgramName().c_str());
    return 0;
  }
  const std::string dataset = cli.GetString("dataset", "PLANTED");
  const Index n = cli.GetIndex("n", 4096);
  const Index len_min = cli.GetIndex("len_min", 24);
  const Index len_max = cli.GetIndex("len_max", 32);
  const std::string out_path = cli.GetString("out", "valmod_trace.json");

  Series series;
  const Status status = GenerateByName(dataset, n, &series);
  if (!status.ok()) {
    std::fprintf(stderr, "trace_capture: %s\n", status.ToString().c_str());
    return 1;
  }

  obs::TraceSession::Global().Start();

  // Stage 1: a top-k query through the service engine (service spans plus
  // the parallel-STOMP kernel chunks underneath compute_artifact).
  QueryEngine engine;
  Request request;
  request.type = QueryType::kTopK;
  request.series = series;
  request.len_min = len_min;
  request.len_max = len_max;
  request.k = cli.GetIndex("k", 3);
  const Response response = engine.Execute(request);
  if (!response.ok) {
    obs::TraceSession::Global().StopAndCollect();
    std::fprintf(stderr, "trace_capture: query failed: %s\n",
                 response.error_message.c_str());
    return 1;
  }

  // Stage 2: the VALMOD driver itself (valmod_run, the Algorithm 3 full
  // pass, and one submp_length_update per length).
  ValmodOptions options;
  options.len_min = len_min;
  options.len_max = len_max;
  const ValmodResult result = RunValmod(series, options);

  const std::vector<obs::TraceEvent> events =
      obs::TraceSession::Global().StopAndCollect();
  const std::string json = obs::ChromeTraceJson(events);
  std::FILE* file = std::fopen(out_path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "trace_capture: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  if (written != json.size()) {
    std::fprintf(stderr, "trace_capture: short write to %s\n",
                 out_path.c_str());
    return 1;
  }

  std::printf("trace_capture: %zu spans over %zu lengths -> %s\n",
              events.size(), result.length_stats.size(), out_path.c_str());
#if !VALMOD_TRACING_ENABLED
  std::printf("trace_capture: tracing compiled out (VALMOD_TRACING=OFF); "
              "the file is an empty trace\n");
#endif
  return 0;
}
