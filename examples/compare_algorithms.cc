// Side-by-side run of all four algorithms of the paper's benchmark on one
// dataset: VALMOD, STOMP-per-length, QUICK MOTIF-per-length, and MOEN.
// Verifies they agree on every per-length motif distance (they are all
// exact) and reports wall-clock times — a miniature, single-dataset
// Figure 8.
//
//   ./compare_algorithms [--dataset=ECG] [--n=4096] [--len_min=128]
//                        [--range=16]

#include <cmath>
#include <cstdio>

#include "baselines/moen.h"
#include "baselines/quick_motif.h"
#include "baselines/stomp_adapted.h"
#include "core/valmod.h"
#include "datasets/registry.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);
  const std::string dataset = cli.GetString("dataset", "ECG");
  const Index n = cli.GetIndex("n", 4096);
  const Index len_min = cli.GetIndex("len_min", 128);
  const Index len_max = len_min + cli.GetIndex("range", 16);

  Series series;
  const Status status = GenerateByName(dataset, n, &series);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("dataset=%s n=%lld range=[%lld, %lld]\n", dataset.c_str(),
              static_cast<long long>(n), static_cast<long long>(len_min),
              static_cast<long long>(len_max));

  WallTimer timer;
  ValmodOptions options;
  options.len_min = len_min;
  options.len_max = len_max;
  options.p = 10;
  const ValmodResult valmod = RunValmod(series, options);
  const double valmod_s = timer.Seconds();

  timer.Reset();
  const PerLengthMotifs stomp = StompPerLength(series, len_min, len_max);
  const double stomp_s = timer.Seconds();

  timer.Reset();
  const PerLengthMotifs quick = QuickMotifPerLength(series, len_min, len_max);
  const double quick_s = timer.Seconds();

  timer.Reset();
  const MoenResult moen = MoenVariableLength(series, len_min, len_max);
  const double moen_s = timer.Seconds();

  // Cross-check exactness.
  Index disagreements = 0;
  for (std::size_t k = 0; k < stomp.motifs.size(); ++k) {
    const double reference = stomp.motifs[k].distance;
    for (const double other :
         {valmod.per_length_motifs[k].distance, quick.motifs[k].distance,
          moen.motifs[k].distance}) {
      if (std::abs(other - reference) > 1e-5 * (1.0 + reference)) {
        ++disagreements;
      }
    }
  }

  Table table({"algorithm", "seconds", "speed-up vs STOMP"});
  table.AddRow({"VALMOD", Table::Num(valmod_s, 3),
                Table::Num(stomp_s / valmod_s, 1) + "x"});
  table.AddRow({"STOMP (per length)", Table::Num(stomp_s, 3), "1.0x"});
  table.AddRow({"QUICK MOTIF (per length)", Table::Num(quick_s, 3),
                Table::Num(stomp_s / quick_s, 1) + "x"});
  table.AddRow({"MOEN", Table::Num(moen_s, 3),
                Table::Num(stomp_s / moen_s, 1) + "x"});
  std::printf("\n%s", table.Render().c_str());
  std::printf("\nper-length motif distance disagreements: %lld (must be 0 — "
              "all four algorithms are exact)\n",
              static_cast<long long>(disagreements));
  return disagreements == 0 ? 0 : 1;
}
