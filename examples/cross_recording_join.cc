// Variable-length join between two recordings (the AB-VALMOD extension):
// find the closest shared pattern between two separate ECG sessions at
// every length in a range — e.g. "does the arrhythmia episode in session A
// appear in session B, and at what time scale?". The same Eq. 2 machinery
// as VALMOD, across series.
//
//   ./cross_recording_join [--n=3000] [--len_min=60] [--len_max=100]

#include <cstdio>

#include "core/ab_valmod.h"
#include "datasets/generators.h"
#include "signal/znorm.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);
  const Index n = cli.GetIndex("n", 3000);

  // Two sessions of the same subject: same beat morphology, different
  // noise and timing — cross-session matches exist by construction.
  const Series session_a = GenerateEcg(n, 21);
  const Series session_b = GenerateEcg(n, 22);
  std::printf("two ECG sessions of %lld points each\n",
              static_cast<long long>(n));

  AbValmodOptions options;
  options.len_min = cli.GetIndex("len_min", 60);
  options.len_max = cli.GetIndex("len_max", 100);
  options.p = 10;
  WallTimer timer;
  const AbValmodResult result = RunAbValmod(session_a, session_b, options);
  std::printf(
      "AB-VALMOD over lengths [%lld, %lld]: %.2f s, %lld full join passes\n\n",
      static_cast<long long>(options.len_min),
      static_cast<long long>(options.len_max), timer.Seconds(),
      static_cast<long long>(result.full_join_computations));

  Table table({"length", "offset in A", "offset in B", "zdist",
               "norm dist"});
  for (const MotifPair& motif : result.per_length_join_motifs) {
    if (!motif.valid()) continue;
    table.AddRow({Table::Int(motif.length), Table::Int(motif.a),
                  Table::Int(motif.b), Table::Num(motif.distance, 3),
                  Table::Num(LengthNormalize(motif.distance, motif.length),
                             4)});
  }
  std::printf("closest cross-session pair per length:\n%s\n",
              table.Render().c_str());

  const MotifPair best = result.BestOverall();
  std::printf(
      "best shared pattern: A@%lld matches B@%lld over %lld samples "
      "(z-distance %.3f)\n",
      static_cast<long long>(best.a), static_cast<long long>(best.b),
      static_cast<long long>(best.length), best.distance);
  return 0;
}
