// Offline artifact-catalog builder: computes the full VALMOD artifact for
// a (series, length range, p) key and persists it into a sharded catalog
// directory, so a later `valmod_serve --catalog_dir=DIR` answers the same
// cold query from disk instead of recomputing it.
//
//   valmod_catalog --catalog_dir=/var/lib/valmod/catalog \
//       --dataset=PLANTED --n=65536 --len_min=64 --len_max=96
//
// The artifact stores top-K lists --stored_k deep (default: the engine's
// max_k, 64) so every admissible per-request k is served by prefix
// truncation — bit-identical to computing with that k directly.

#include <cstdio>

#include "catalog/builder.h"
#include "catalog/catalog.h"
#include "datasets/registry.h"
#include "service/fingerprint.h"
#include "util/cli.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);
  if (cli.Has("help")) {
    std::printf(
        "usage: %s --catalog_dir=DIR --dataset=NAME --n=POINTS\n"
        "          --len_min=L --len_max=U [--p=10] [--stored_k=64]\n"
        "          [--shards=8] [--stomp_threads=1]\n"
        "Builds the VALMOD motif artifact for one (dataset, n, length\n"
        "range, p) key offline and persists it into the sharded catalog at\n"
        "--catalog_dir. valmod_serve --catalog_dir=DIR then serves the\n"
        "matching cold queries from the artifact.\n",
        cli.ProgramName().c_str());
    return 0;
  }

  const std::string catalog_dir = cli.GetString("catalog_dir", "");
  if (catalog_dir.empty()) {
    std::fprintf(stderr, "valmod_catalog: --catalog_dir is required\n");
    return 1;
  }
  const std::string dataset = cli.GetString("dataset", "PLANTED");
  const Index n = cli.GetIndex("n", 16384);

  Series series;
  Status status = GenerateByName(dataset, n, &series);
  if (!status.ok()) {
    std::fprintf(stderr, "valmod_catalog: %s\n", status.ToString().c_str());
    return 1;
  }

  catalog::BuildOptions build_options;
  build_options.len_min = cli.GetIndex("len_min", 64);
  build_options.len_max = cli.GetIndex("len_max", 96);
  build_options.p = cli.GetIndex("p", 10);
  build_options.stored_k = cli.GetIndex("stored_k", 64);
  build_options.stomp_threads =
      static_cast<int>(cli.GetIndex("stomp_threads", 1));

  catalog::CatalogOptions catalog_options;
  catalog_options.root = catalog_dir;
  catalog_options.shards = static_cast<int>(cli.GetIndex("shards", 8));
  catalog::Catalog catalog(catalog_options);
  status = catalog.Open();
  if (!status.ok()) {
    std::fprintf(stderr, "valmod_catalog: %s\n", status.ToString().c_str());
    return 1;
  }

  const std::uint64_t fingerprint = SeriesFingerprint(series);
  WallTimer timer;
  catalog::MotifArtifact artifact;
  status = catalog::BuildArtifact(series, fingerprint, build_options,
                                  Deadline(), &artifact);
  if (!status.ok()) {
    std::fprintf(stderr, "valmod_catalog: build failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  const double build_s = timer.Seconds();
  status = catalog.Put(artifact);
  if (!status.ok()) {
    std::fprintf(stderr, "valmod_catalog: persist failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf(
      "valmod_catalog: built %s n=%lld len=[%lld,%lld] p=%lld "
      "stored_k=%lld in %.2fs\n",
      dataset.c_str(), static_cast<long long>(n),
      static_cast<long long>(build_options.len_min),
      static_cast<long long>(build_options.len_max),
      static_cast<long long>(build_options.p),
      static_cast<long long>(build_options.stored_k), build_s);
  std::printf("valmod_catalog: persisted %s (fingerprint %s, ~%zu bytes)\n",
              catalog.ArtifactPath(artifact.key).c_str(),
              FingerprintHex(fingerprint).c_str(), artifact.ApproxBytes());
  return 0;
}
