#!/usr/bin/env bash
# Check-only clang-format gate: exits non-zero if any tracked C++ file
# deviates from .clang-format. Never rewrites anything.
#
#   tools/check_format.sh [paths...]   # default: src tests bench tools examples
#
# Exits 0 with a notice when clang-format is missing locally; CI installs it.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
fmt_bin="${CLANG_FORMAT:-clang-format}"
if ! command -v "${fmt_bin}" >/dev/null 2>&1; then
  echo "check_format.sh: ${fmt_bin} not found on PATH; skipping (install" \
       "clang-format or set CLANG_FORMAT to enable this check)." >&2
  exit 0
fi

paths=("$@")
if [[ ${#paths[@]} -eq 0 ]]; then
  paths=("${repo_root}/src" "${repo_root}/tests" "${repo_root}/bench" \
         "${repo_root}/tools" "${repo_root}/examples")
fi

mapfile -t sources < <(find "${paths[@]}" \( -name '*.cc' -o -name '*.h' \) \
    | sort)

echo "check_format.sh: checking ${#sources[@]} files" >&2
"${fmt_bin}" --dry-run -Werror --style=file "${sources[@]}"
echo "check_format.sh: formatting clean." >&2
