// dataset_tool: generates the benchmark datasets (and the case-study
// series) to files, so the experiments can be rerun from fixed inputs or
// the stand-ins exported into other toolchains.
//
//   ./dataset_tool --name=ECG --n=100000 --out=ecg.txt [--seed=101]
//   ./dataset_tool --name=EPG --out=epg.txt            # case-study series
//   ./dataset_tool --name=SEISMIC --out=quake.txt
//   ./dataset_tool --list

#include <cstdio>
#include <string>

#include "datasets/epg.h"
#include "datasets/generators.h"
#include "datasets/io.h"
#include "datasets/registry.h"
#include "datasets/stats.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);

  if (cli.GetBool("list", false)) {
    Table table({"name", "description"});
    for (const DatasetSpec& spec : BenchmarkDatasets()) {
      table.AddRow({spec.name, spec.description});
    }
    table.AddRow({"EPG", "insect-feeding case study (Figure 1 / Sec. 9.1)"});
    table.AddRow({"SEISMIC", "repeating-earthquake case study"});
    std::printf("%s", table.Render().c_str());
    return 0;
  }

  const std::string name = cli.GetString("name", "");
  const std::string out_path = cli.GetString("out", "");
  if (name.empty() || out_path.empty()) {
    std::fprintf(stderr,
                 "usage: %s --name=ECG|GAP|ASTRO|EMG|EEG|EPG|SEISMIC "
                 "--out=FILE [--n=N] [--seed=S] [--binary]\n       %s --list\n",
                 argv[0], argv[0]);
    return 2;
  }
  const Index n = cli.GetIndex("n", 100000);

  Series series;
  if (name == "EPG" || name == "epg") {
    EpgOptions options;
    options.n = n;
    if (cli.Has("seed")) {
      options.seed = static_cast<std::uint64_t>(cli.GetIndex("seed", 42));
    }
    series = GenerateEpg(options).values;
  } else if (name == "SEISMIC" || name == "seismic") {
    series = GenerateSeismic(
        n, static_cast<std::uint64_t>(cli.GetIndex("seed", 3)));
  } else if (cli.Has("seed")) {
    // Named benchmark dataset with an explicit seed.
    bool found = false;
    for (const DatasetSpec& spec : BenchmarkDatasets()) {
      if (spec.name == name) {
        series = spec.generator(
            n, static_cast<std::uint64_t>(cli.GetIndex("seed", 0)));
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "error: unknown dataset %s\n", name.c_str());
      return 2;
    }
  } else {
    const Status status = GenerateByName(name, n, &series);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 2;
    }
  }

  const Status status = cli.GetBool("binary", false)
                            ? WriteSeriesBinary(series, out_path)
                            : WriteSeriesText(series, out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  const SeriesSummary summary = Summarize(series);
  std::printf(
      "wrote %lld points to %s (min %.4g, max %.4g, mean %.4g, std %.4g)\n",
      static_cast<long long>(summary.n), out_path.c_str(), summary.min,
      summary.max, summary.mean, summary.std);
  return 0;
}
