/// Fuzzes the stream-checkpoint restore path: ParseCheckpoint over raw
/// bytes (mostly exercising the magic/version/checksum gates) and over the
/// same bytes re-sealed with a valid FNV-1a trailer, so mutations reach the
/// structural parser and OnlineMotifTracker::FromSnapshots behind the
/// checksum. Any crash or sanitizer report is a finding: a corrupt
/// checkpoint must always come back as a Status, never as UB or an abort.
///
/// Seed corpus: tests/golden/checkpoint_v1.golden (a real checkpoint).

#include "fuzz_common.h"

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "stream/checkpoint.h"
#include "stream/online_motif_tracker.h"

namespace {

/// Mirrors the checkpoint trailer hash (FNV-1a 64) so mutated bodies can be
/// re-sealed past the checksum gate.
std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (char c : bytes) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ULL;
  }
  return hash;
}

valmod::OnlineMotifTracker FreshTracker() {
  valmod::OnlineTrackerOptions options;
  options.length_min = 8;
  options.length_max = 16;
  options.length_step = 4;
  return valmod::OnlineMotifTracker(options);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  // Pass 1: the bytes as-is. Most mutants die at the checksum gate — that
  // gate is itself attack surface (trailer parsing, hex decoding).
  {
    valmod::OnlineMotifTracker tracker = FreshTracker();
    (void)valmod::ParseCheckpoint(input, "fuzz", &tracker);
  }

  // Pass 2: strip any existing trailer and re-seal with a valid checksum,
  // so the mutated body reaches options/window/profile parsing and the
  // FromSnapshots restore behind the gate.
  std::string body(input.substr(0, input.rfind("\nchecksum ") ==
                                           std::string_view::npos
                                       ? input.size()
                                       : input.rfind("\nchecksum ") + 1));
  if (body.empty() || body.back() != '\n') body.push_back('\n');
  char trailer[32];
  std::snprintf(trailer, sizeof(trailer), "checksum %llx\n",
                static_cast<unsigned long long>(Fnv1a64(body)));
  const std::string sealed = body + trailer;
  valmod::OnlineMotifTracker tracker = FreshTracker();
  (void)valmod::ParseCheckpoint(sealed, "fuzz-sealed", &tracker);
  return 0;
}

VALMOD_FUZZ_STANDALONE_MAIN()
