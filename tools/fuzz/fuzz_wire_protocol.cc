/// Fuzzes the VALMOD/1 wire path a hostile client controls: the frame
/// header parser, the JSON parser, and Request/Response::FromJson. Any
/// crash, sanitizer report, or hang is a finding — parse errors are the
/// expected outcome for most inputs and must surface as Status, never as
/// UB. Accepted payloads are additionally round-tripped (parse → serialize
/// → reparse) so serialization stays total over everything FromJson admits.
///
/// Seed corpus: tests/golden/frames_v1.golden (real frames of both
/// directions). Input shape: optionally a `VALMOD/1 <n>` header line, then
/// arbitrary bytes treated as a frame payload.

#include "fuzz_common.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "service/json.h"
#include "service/protocol.h"
#include "util/status.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  // First line through the frame-header parser (a corpus frame starts with
  // one; for arbitrary bytes this exercises the reject paths).
  const std::size_t newline = input.find('\n');
  const std::string_view header =
      newline == std::string_view::npos ? input : input.substr(0, newline);
  std::size_t payload_bytes = 0;
  (void)valmod::ParseFrameHeader(header, &payload_bytes);

  // Everything after the header line (or the whole input when there is
  // none) through the JSON parser and both message decoders.
  const std::string payload(newline == std::string_view::npos
                                ? input
                                : input.substr(newline + 1));
  valmod::JsonValue json;
  if (!valmod::JsonValue::Parse(payload, &json).ok()) return 0;

  valmod::Request request;
  if (request.FromJson(json).ok()) {
    // Whatever FromJson admits, ToJson must serialize and reparse.
    const std::string again = request.ToJson().Serialize();
    valmod::JsonValue reparsed;
    if (!valmod::JsonValue::Parse(again, &reparsed).ok()) __builtin_trap();
    valmod::Request roundtrip;
    if (!roundtrip.FromJson(reparsed).ok()) __builtin_trap();
  }

  valmod::Response response;
  if (response.FromJson(json).ok()) {
    const std::string again = response.ToJson().Serialize();
    valmod::JsonValue reparsed;
    if (!valmod::JsonValue::Parse(again, &reparsed).ok()) __builtin_trap();
    valmod::Response roundtrip;
    if (!roundtrip.FromJson(reparsed).ok()) __builtin_trap();
  }
  return 0;
}

VALMOD_FUZZ_STANDALONE_MAIN()
