#ifndef VALMOD_TOOLS_FUZZ_FUZZ_COMMON_H_
#define VALMOD_TOOLS_FUZZ_FUZZ_COMMON_H_

/// Shared scaffolding for the fuzz harnesses in tools/fuzz/. Each harness
/// defines the libFuzzer entry point LLVMFuzzerTestOneInput; under clang
/// with -fsanitize=fuzzer (VALMOD_HAVE_LIBFUZZER) libFuzzer supplies
/// main(), everywhere else the VALMOD_FUZZ_STANDALONE_MAIN macro expands to
/// a file-driven main that replays each argv path through the same entry
/// point — so the golden-corpus smoke test runs identically under gcc.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

#if defined(VALMOD_HAVE_LIBFUZZER)
#define VALMOD_FUZZ_STANDALONE_MAIN()
#else
#define VALMOD_FUZZ_STANDALONE_MAIN()                                        \
  int main(int argc, char** argv) {                                          \
    int replayed = 0;                                                        \
    for (int i = 1; i < argc; ++i) {                                         \
      std::ifstream in(argv[i], std::ios::binary);                           \
      if (!in) {                                                             \
        std::fprintf(stderr, "cannot open %s\n", argv[i]);                   \
        return 1;                                                            \
      }                                                                      \
      std::ostringstream buffer;                                             \
      buffer << in.rdbuf();                                                  \
      const std::string bytes = buffer.str();                                \
      LLVMFuzzerTestOneInput(                                                \
          reinterpret_cast<const std::uint8_t*>(bytes.data()),               \
          bytes.size());                                                     \
      ++replayed;                                                            \
    }                                                                        \
    std::fprintf(stderr, "replayed %d input(s), no crash\n", replayed);      \
    return 0;                                                                \
  }
#endif

#endif  // VALMOD_TOOLS_FUZZ_FUZZ_COMMON_H_
