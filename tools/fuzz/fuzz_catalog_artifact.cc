/// Fuzzes the catalog artifact parser: ParseArtifact over raw bytes
/// (exercising the magic/version/geometry/checksum gates) and over the same
/// bytes re-sealed with a valid FNV-1a trailer, so mutations reach the
/// structural parser behind the checksum. Any crash, sanitizer report, or
/// over-allocation is a finding: a corrupt artifact file must always come
/// back as a Status, never as UB or an abort — a server restart loads these
/// files straight off disk.
///
/// Seed corpus: tests/golden/catalog_artifact_v1.golden (a real artifact).

#include "fuzz_common.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "catalog/artifact.h"
#include "catalog/format.h"

namespace {

/// Mirrors the artifact trailer hash (FNV-1a 64) so mutated bodies can be
/// re-sealed past the checksum gate.
std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (char c : bytes) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  // Pass 1: the bytes as-is. Most mutants die at the magic/size/checksum
  // gates — those gates are themselves attack surface (the size arithmetic
  // must never trust header counts before bounding them).
  {
    valmod::catalog::MotifArtifact artifact;
    (void)valmod::catalog::ParseArtifact(input, "fuzz", &artifact);
  }

  // Pass 2: strip the 8-byte trailer and re-seal the body with a valid
  // checksum, so mutated headers, VALMP slots, and length records reach
  // the structural parser behind the gate.
  if (input.size() > 8) {
    std::string sealed(input.substr(0, input.size() - 8));
    const std::uint64_t checksum = Fnv1a64(sealed);
    for (int i = 0; i < 8; ++i) {
      sealed.push_back(static_cast<char>((checksum >> (i * 8)) & 0xffu));
    }
    valmod::catalog::MotifArtifact artifact;
    (void)valmod::catalog::ParseArtifact(sealed, "fuzz-sealed", &artifact);
  }
  return 0;
}

VALMOD_FUZZ_STANDALONE_MAIN()
