#!/usr/bin/env python3
"""Line-coverage ratchet for the hot directories (src/core, src/mp).

Aggregates gcov line coverage from a VALMOD_COVERAGE build tree (the
`coverage` preset) after the test suite has run, then compares each ratcheted
directory against the committed floor in tools/coverage_baseline.json. The
check fails when coverage drops below the floor minus a small slack — so a PR
that adds uncovered code to the measured subsystems must also add tests.
Raising the floor is intentional and manual: run with --update after
improving coverage and commit the diff.

The container ships plain gcov (no gcovr/lcov), so this drives
`gcov --json-format --stdout` directly over every .gcda file and merges the
per-object reports itself; a source line counts as covered when any object
that compiled it executed it.

Usage:
  tools/check_coverage.py --build-dir build/coverage [--update] [--verbose]
"""

import argparse
import collections
import json
import os
import subprocess
import sys

# Directories (repo-relative prefixes) whose coverage is ratcheted.
RATCHETED = ["src/core", "src/mp"]

# Allowed drop below the committed floor, in percentage points: absorbs line
# drift from unrelated refactors without letting real regressions through.
SLACK = 0.25


def find_repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def collect_gcda(build_dir):
    out = []
    for dirpath, _dirnames, filenames in os.walk(build_dir):
        for name in filenames:
            if name.endswith(".gcda"):
                out.append(os.path.join(dirpath, name))
    return out


def gcov_json(gcda_path):
    """Runs gcov on one .gcda and yields its parsed JSON report."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda_path],
        cwd=os.path.dirname(gcda_path),
        capture_output=True,
        text=True,
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"gcov failed on {gcda_path}: {proc.stderr.strip()}")
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        yield json.loads(line)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build/coverage",
                        help="coverage-instrumented build tree (after ctest)")
    parser.add_argument("--baseline",
                        default=os.path.join("tools",
                                             "coverage_baseline.json"))
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline with current coverage")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    root = find_repo_root()
    build_dir = os.path.join(root, args.build_dir)
    if not os.path.isdir(build_dir):
        print(f"error: build dir {build_dir} not found", file=sys.stderr)
        return 2

    gcda_files = collect_gcda(build_dir)
    if not gcda_files:
        print(f"error: no .gcda files under {build_dir}; build with the "
              "`coverage` preset and run ctest first", file=sys.stderr)
        return 2

    # file -> line -> max execution count across objects.
    lines = collections.defaultdict(dict)
    for gcda in gcda_files:
        for report in gcov_json(gcda):
            for entry in report.get("files", []):
                path = entry["file"]
                if not os.path.isabs(path):
                    path = os.path.normpath(
                        os.path.join(os.path.dirname(gcda), path))
                rel = os.path.relpath(path, root)
                if rel.startswith(".."):
                    continue  # toolchain or third-party header
                per_file = lines[rel]
                for line in entry.get("lines", []):
                    number = line["line_number"]
                    count = line["count"]
                    per_file[number] = max(per_file.get(number, 0), count)

    covered = collections.Counter()
    total = collections.Counter()
    for rel, per_file in lines.items():
        for prefix in RATCHETED:
            if rel.startswith(prefix + os.sep):
                total[prefix] += len(per_file)
                covered[prefix] += sum(1 for c in per_file.values() if c > 0)
                break

    current = {}
    for prefix in RATCHETED:
        if total[prefix] == 0:
            print(f"error: no measured lines under {prefix}",
                  file=sys.stderr)
            return 2
        current[prefix] = round(100.0 * covered[prefix] / total[prefix], 2)
        print(f"{prefix}: {current[prefix]:.2f}% "
              f"({covered[prefix]}/{total[prefix]} lines)")

    baseline_path = os.path.join(root, args.baseline)
    if args.update:
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump(current, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated: {baseline_path}")
        return 0

    try:
        with open(baseline_path, encoding="utf-8") as f:
            baseline = json.load(f)
    except FileNotFoundError:
        print(f"error: missing baseline {baseline_path}; create it with "
              "--update", file=sys.stderr)
        return 2

    failed = False
    for prefix in RATCHETED:
        floor = float(baseline.get(prefix, 0.0))
        if current[prefix] + SLACK < floor:
            print(f"FAIL: {prefix} coverage {current[prefix]:.2f}% is below "
                  f"the ratcheted floor {floor:.2f}% (slack {SLACK})",
                  file=sys.stderr)
            failed = True
        elif args.verbose:
            print(f"ok: {prefix} {current[prefix]:.2f}% >= "
                  f"floor {floor:.2f}% - {SLACK}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
