#!/usr/bin/env bash
# Runs clang-tidy over the library sources using the compile_commands.json
# of an existing build directory.
#
#   tools/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Default build dir: build/release if it exists, else build. Exits 0 with a
# notice when clang-tidy is not installed (the container image may only
# ship gcc); CI provides clang-tidy and treats findings as failures.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-}"
if [[ -z "${build_dir}" ]]; then
  if [[ -f "${repo_root}/build/release/compile_commands.json" ]]; then
    build_dir="${repo_root}/build/release"
  else
    build_dir="${repo_root}/build"
  fi
fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" >/dev/null 2>&1; then
  echo "run_tidy.sh: ${tidy_bin} not found on PATH; skipping (install" \
       "clang-tidy or set CLANG_TIDY to enable this check)." >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_tidy.sh: ${build_dir}/compile_commands.json missing." >&2
  echo "Configure first, e.g.: cmake --preset release" >&2
  exit 2
fi

shift $(( $# > 0 ? 1 : 0 )) || true
if [[ "${1:-}" == "--" ]]; then shift; fi

# Library and tool sources only; test binaries follow the same headers via
# HeaderFilterRegex without tripling the runtime.
mapfile -t sources < <(find "${repo_root}/src" "${repo_root}/tools" \
    -name '*.cc' | sort)

echo "run_tidy.sh: checking ${#sources[@]} files against ${build_dir}" >&2
"${tidy_bin}" -p "${build_dir}" --quiet "$@" "${sources[@]}"
echo "run_tidy.sh: clean." >&2
