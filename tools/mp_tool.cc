// mp_tool: single-length matrix-profile utility over a series file.
// Computes the exact matrix profile with a selectable algorithm and writes
// it as CSV; optionally prints the top-k motifs and the top discord.
//
//   ./mp_tool INPUT.txt --len=100 [--algo=stomp|stamp|scrimp]
//             [--out=profile.csv] [--motifs=3] [--discord]
//   ./mp_tool --generate=ECG --n=4096 --len=100 ...

#include <cstdio>
#include <fstream>
#include <string>

#include "core/serialize.h"
#include "datasets/io.h"
#include "datasets/registry.h"
#include "mp/matrix_profile.h"
#include "mp/scrimp.h"
#include "mp/stamp.h"
#include "mp/stomp.h"
#include "signal/znorm.h"
#include "util/cli.h"
#include "util/prefix_stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

int Fail(const valmod::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace valmod;
  const CommandLine cli(argc, argv);

  Series series;
  if (cli.Has("generate")) {
    const Status status = GenerateByName(cli.GetString("generate", "ECG"),
                                         cli.GetIndex("n", 4096), &series);
    if (!status.ok()) return Fail(status);
  } else if (!cli.Positional().empty()) {
    const Status status = ReadSeriesText(cli.Positional()[0], &series);
    if (!status.ok()) return Fail(status);
  } else {
    std::fprintf(stderr,
                 "usage: %s INPUT.txt --len=L [--algo=stomp|stamp|scrimp] "
                 "[--out=FILE.csv] [--motifs=K] [--discord]\n",
                 argv[0]);
    return 2;
  }

  const Index len = cli.GetIndex("len", 0);
  if (len < 4 || static_cast<std::size_t>(2 * len) > series.size()) {
    std::fprintf(stderr, "error: need 4 <= len <= n/2 (len=%lld, n=%zu)\n",
                 static_cast<long long>(len), series.size());
    return 2;
  }

  const std::string algo = cli.GetString("algo", "stomp");
  const Series centered = CenterSeries(series);
  const PrefixStats stats(centered);
  WallTimer timer;
  MatrixProfile profile;
  if (algo == "stomp") {
    profile = Stomp(centered, stats, len);
  } else if (algo == "stamp") {
    profile = Stamp(centered, stats, len);
  } else if (algo == "scrimp") {
    profile = Scrimp(centered, stats, len);
  } else {
    std::fprintf(stderr, "error: unknown --algo=%s\n", algo.c_str());
    return 2;
  }
  std::printf("%s over %zu points at length %lld: %.3f s\n", algo.c_str(),
              series.size(), static_cast<long long>(len), timer.Seconds());

  const Index k = cli.GetIndex("motifs", 3);
  const std::vector<MotifPair> motifs = TopMotifsFromProfile(profile, k);
  Table table({"rank", "offset a", "offset b", "zdist"});
  for (std::size_t r = 0; r < motifs.size(); ++r) {
    table.AddRow({Table::Int(static_cast<long long>(r + 1)),
                  Table::Int(motifs[r].a), Table::Int(motifs[r].b),
                  Table::Num(motifs[r].distance, 4)});
  }
  std::printf("%s", table.Render().c_str());

  if (cli.GetBool("discord", false)) {
    const Discord discord = DiscordFromProfile(profile);
    std::printf("top discord: offset %lld, nn-distance %.4f\n",
                static_cast<long long>(discord.offset), discord.distance);
  }

  if (cli.Has("out")) {
    const std::string path = cli.GetString("out", "profile.csv");
    if (const Status status = WriteMatrixProfileCsv(profile, path);
        !status.ok()) {
      return Fail(status);
    }
    std::printf("profile written to %s\n", path.c_str());
  }
  return 0;
}
