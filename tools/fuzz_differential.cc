// Randomized differential tester: generates random series (mixing walk,
// noise, planted motifs, flat plateaus and spikes), draws random VALMOD
// parameters, and cross-checks VALMOD / MOEN / QUICK MOTIF / STOMP against
// brute force on every length. Runs forever with --trials=0; the default
// budget is small enough for CI. Exits non-zero on the first divergence
// with a full repro line.
//
//   ./fuzz_differential [--trials=25] [--seed=1] [--max_n=400]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "baselines/moen.h"
#include "baselines/quick_motif.h"
#include "baselines/stomp_adapted.h"
#include "core/valmod.h"
#include "datasets/generators.h"
#include "mp/brute_force.h"
#include "util/cli.h"
#include "util/random.h"

namespace {

using namespace valmod;

Series RandomSeries(Rng& rng, Index n) {
  Series s(static_cast<std::size_t>(n));
  // Base: noise, walk, or oscillation.
  const int kind = static_cast<int>(rng.UniformIndex(0, 2));
  double level = 0.0;
  for (Index i = 0; i < n; ++i) {
    switch (kind) {
      case 0:
        s[static_cast<std::size_t>(i)] = rng.Gaussian();
        break;
      case 1:
        level += rng.Gaussian(0.0, 0.4);
        s[static_cast<std::size_t>(i)] = level;
        break;
      default:
        s[static_cast<std::size_t>(i)] =
            std::sin(0.2 * static_cast<double>(i)) +
            rng.Gaussian(0.0, 0.2);
    }
  }
  // Random hazards: flat plateau, spike, planted pattern.
  if (rng.Bernoulli(0.5)) {
    const Index at = rng.UniformIndex(0, n - n / 8 - 1);
    const double v = rng.Uniform(-2.0, 2.0);
    for (Index k = 0; k < n / 8; ++k) {
      s[static_cast<std::size_t>(at + k)] = v;
    }
  }
  if (rng.Bernoulli(0.5)) {
    s[static_cast<std::size_t>(rng.UniformIndex(0, n - 1))] +=
        rng.Uniform(-50.0, 50.0);
  }
  if (rng.Bernoulli(0.5)) {
    const Index plen = rng.UniformIndex(16, 40);
    Series pattern(static_cast<std::size_t>(plen));
    for (Index k = 0; k < plen; ++k) {
      pattern[static_cast<std::size_t>(k)] =
          3.0 * std::sin(0.5 * static_cast<double>(k));
    }
    const Index a = rng.UniformIndex(0, n / 2 - plen);
    const Index b = rng.UniformIndex(n / 2, n - plen);
    InjectPattern(s, pattern, a);
    InjectPattern(s, pattern, b);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cli(argc, argv);
  const Index trials = cli.GetIndex("trials", 25);
  const Index max_n = cli.GetIndex("max_n", 400);
  Rng rng(static_cast<std::uint64_t>(cli.GetIndex("seed", 1)));

  Index executed = 0;
  for (Index t = 0; trials == 0 || t < trials; ++t) {
    const Index n = rng.UniformIndex(max_n / 2, max_n);
    const Index len_min = rng.UniformIndex(8, 24);
    const Index len_max = len_min + rng.UniformIndex(2, 10);
    if (n < len_max + ExclusionZone(len_max) + 4) continue;
    const Index p = rng.UniformIndex(1, 12);
    const Series s = RandomSeries(rng, n);

    ValmodOptions options;
    options.len_min = len_min;
    options.len_max = len_max;
    options.p = p;
    const ValmodResult valmod = RunValmod(s, options);
    const MoenResult moen = MoenVariableLength(s, len_min, len_max);
    const PerLengthMotifs quick = QuickMotifPerLength(s, len_min, len_max);
    const std::vector<MotifPair> truth =
        BruteForceVariableLengthMotifs(s, len_min, len_max);

    for (std::size_t k = 0; k < truth.size(); ++k) {
      const double want = truth[k].distance;
      const double tol = 1e-5 * (1.0 + want);
      const struct {
        const char* name;
        double got;
      } checks[] = {
          {"VALMOD", valmod.per_length_motifs[k].distance},
          {"MOEN", moen.motifs[k].distance},
          {"QUICKMOTIF", quick.motifs[k].distance},
      };
      for (const auto& check : checks) {
        if (std::abs(check.got - want) > tol) {
          std::fprintf(stderr,
                       "DIVERGENCE: algo=%s trial=%lld n=%lld len=%zu "
                       "p=%lld got=%.9f want=%.9f (repro: --seed=%lld)\n",
                       check.name, static_cast<long long>(t),
                       static_cast<long long>(n), k + len_min,
                       static_cast<long long>(p), check.got, want,
                       static_cast<long long>(cli.GetIndex("seed", 1)));
          return 1;
        }
      }
    }
    ++executed;
    if (executed % 10 == 0) {
      std::printf("%lld trials clean...\n", static_cast<long long>(executed));
    }
  }
  std::printf("fuzz: %lld trials, all algorithms agree with brute force\n",
              static_cast<long long>(executed));
  return 0;
}
