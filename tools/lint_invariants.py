#!/usr/bin/env python3
"""VALMOD project invariant linter.

Enforces codebase-specific rules that generic tooling (clang-tidy, compiler
warnings) cannot express. Runs as a tier-1 CTest test (`lint_invariants`),
so a violation fails `ctest`, not just CI. Run locally with:

    python3 tools/lint_invariants.py --root .

Checks (use `--list` to print this table):

  header-guard        #ifndef/#define/#endif guards spell VALMOD_<PATH>_H_.
  no-pow-square       Kernels use x * x, never std::pow(x, 2): pow is not
                      constant-folded on every toolchain and the distance
                      kernels sit on the hot path of Algorithms 3-6.
  span-by-value       std::span is a cheap view; passing `const span<T>&`
                      adds an indirection for nothing. Pass it by value.
  no-naked-new        No naked `new` outside explicitly waived
                      leak-on-purpose singletons; the codebase owns memory
                      through containers and values.
  core-docs           Every public function declared in src/core,
                      src/stream, src/service, and src/catalog headers
                      carries a /// doc comment: src/core is the paper
                      surface (Algorithms 3-6), src/stream the online API
                      surface, src/service the query-protocol surface, and
                      src/catalog the persisted-artifact surface; each
                      entry point must say what it reproduces or
                      guarantees.
  no-float-distance   Distance math is double-only. Eq. 2's admissibility
                      argument relies on the error bounds worked out for
                      64-bit; a stray float silently halves the mantissa.
                      Covers src/core, src/mp, src/signal, src/stream,
                      src/service, src/catalog (the service and catalog
                      serialize distances, so a float there would corrupt
                      the wire and on-disk contracts too).
  no-unbounded-queue  Every std::deque/std::queue member in src/service
                      and src/catalog must state its capacity bound in an
                      adjacent comment (within two lines). The service's
                      admission-control guarantee — backpressure instead
                      of unbounded memory growth — dies the day someone
                      adds a buffer nobody bounded.
  no-using-namespace  Headers never open namespaces for their includers.
  self-include-first  Every src/<dir>/foo.cc includes "its" header
                      "<dir>/foo.h" first, proving the header is
                      self-contained.
  obs-span-names      obs::TraceSpan names are snake_case string literals,
                      unique within their file. Span names are the public
                      vocabulary of the trace export and the slow-query
                      stage log (docs/OBSERVABILITY.md glossary); a
                      CamelCase or duplicated name breaks trace grouping
                      silently.
  guarded-by-required In src/service, src/obs, src/stream, and
                      src/catalog, every data
                      member of a class or struct that holds a
                      valmod::Mutex/SharedMutex must either carry
                      GUARDED_BY/PT_GUARDED_BY or say why not in a
                      `// unguarded: <reason>` comment (same line or the
                      doc comment above). Exempt on their own: the lock
                      members themselves, CondVar, std::atomic, and
                      const/static members. This keeps the thread-safety
                      annotations (docs/TOOLING.md) exhaustive — an
                      unannotated member is invisible to the analysis,
                      which is exactly how locking bugs hide.

A line can waive a named check with a trailing comment:

    static Foo& foo = *new Foo{...};  // lint: allow(no-naked-new) -- why

Keep waivers rare and always justify them after the `--`.
"""

import argparse
import os
import re
import sys

SRC_DIRS = ("src",)
HEADER_GUARD_DIRS = ("src", "bench", "tests")
DISTANCE_MATH_DIRS = ("src/core", "src/mp", "src/signal", "src/stream",
                      "src/service", "src/obs", "src/catalog")
DOCUMENTED_API_DIRS = ("src/core", "src/stream", "src/service", "src/obs",
                       "src/catalog")
BOUNDED_QUEUE_DIRS = ("src/service", "src/catalog")
SPAN_NAME_DIRS = ("src", "bench", "tests", "examples")
GUARDED_BY_DIRS = ("src/service", "src/obs", "src/stream", "src/catalog")

WAIVER_RE = re.compile(r"//\s*lint:\s*allow\(([a-z0-9-]+)\)")


def find_files(root, subdirs, exts):
    out = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(exts):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


def strip_comments_and_strings(line):
    """Removes // comments, string and char literals (single line scope)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end < 0:
                break
            i = end + 2
            continue
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            i += 1
            out.append(quote + quote)
            continue
        out.append(c)
        i += 1
    return "".join(out)


def waived(line, check, prev_line=""):
    """A waiver may sit on the flagged line or on the line just above it."""
    for candidate in (line, prev_line):
        m = WAIVER_RE.search(candidate)
        if m and m.group(1) == check:
            return True
    return False


class Linter:
    def __init__(self, root):
        self.root = root
        self.errors = []

    def error(self, path, lineno, check, message):
        rel = os.path.relpath(path, self.root)
        self.errors.append(f"{rel}:{lineno}: [{check}] {message}")

    # --- check: header-guard -------------------------------------------------

    def check_header_guards(self):
        for path in find_files(self.root, HEADER_GUARD_DIRS, (".h",)):
            rel = os.path.relpath(path, self.root)
            expected = "VALMOD_" + re.sub(r"[/.]", "_", rel.upper()) + "_"
            if rel.startswith("src/"):
                expected = "VALMOD_" + re.sub(
                    r"[/.]", "_", rel[len("src/"):].upper()) + "_"
            with open(path, encoding="utf-8") as f:
                lines = f.read().splitlines()
            ifndef = next((l for l in lines if l.startswith("#ifndef")), None)
            define = next((l for l in lines if l.startswith("#define")), None)
            endif = next(
                (l for l in reversed(lines) if l.startswith("#endif")), None)
            if ifndef != f"#ifndef {expected}":
                self.error(path, 1, "header-guard",
                           f"expected '#ifndef {expected}', got "
                           f"'{ifndef or '<missing>'}'")
                continue
            if define != f"#define {expected}":
                self.error(path, 2, "header-guard",
                           f"expected '#define {expected}'")
            if endif != f"#endif  // {expected}":
                self.error(path, len(lines), "header-guard",
                           f"closing line must be '#endif  // {expected}'")

    # --- check: no-pow-square ------------------------------------------------

    POW_SQUARE_RE = re.compile(r"std::pow\s*\([^,()]*,\s*2(?:\.0*)?\s*\)")

    def check_no_pow_square(self):
        for path in find_files(self.root, SRC_DIRS, (".h", ".cc")):
            lines = read_lines(path)
            for lineno, line in enumerate(lines, 1):
                if waived(line, "no-pow-square",
                          lines[lineno - 2] if lineno >= 2 else ""):
                    continue
                if self.POW_SQUARE_RE.search(strip_comments_and_strings(line)):
                    self.error(path, lineno, "no-pow-square",
                               "use x * x instead of std::pow(x, 2) in "
                               "kernel code")

    # --- check: span-by-value ------------------------------------------------

    SPAN_REF_RE = re.compile(r"const\s+std::span\s*<[^;{]*?>\s*&")

    def check_span_by_value(self):
        for path in find_files(self.root, SRC_DIRS, (".h", ".cc")):
            lines = read_lines(path)
            for lineno, line in enumerate(lines, 1):
                if waived(line, "span-by-value",
                          lines[lineno - 2] if lineno >= 2 else ""):
                    continue
                if self.SPAN_REF_RE.search(strip_comments_and_strings(line)):
                    self.error(path, lineno, "span-by-value",
                               "std::span is a view; pass it by value, not "
                               "by const reference")

    # --- check: no-naked-new -------------------------------------------------

    NAKED_NEW_RE = re.compile(r"(^|[^\w.])new\s+[A-Za-z_:<]")

    def check_no_naked_new(self):
        for path in find_files(self.root, SRC_DIRS, (".h", ".cc")):
            lines = read_lines(path)
            for lineno, line in enumerate(lines, 1):
                if waived(line, "no-naked-new",
                          lines[lineno - 2] if lineno >= 2 else ""):
                    continue
                if self.NAKED_NEW_RE.search(strip_comments_and_strings(line)):
                    self.error(path, lineno, "no-naked-new",
                               "no naked `new`: own memory via containers "
                               "or values (waive deliberate leak-on-purpose "
                               "singletons with a justification)")

    # --- check: core-docs ----------------------------------------------------

    FUNC_DECL_RE = re.compile(
        r"^(?:template\s*<.*>\s*)?"
        r"(?:[\w:<>,*&\s]+?)\s"          # return type
        r"([A-Za-z_]\w*)\s*\("            # function name + open paren
    )
    DECL_SKIP_RE = re.compile(
        r"^\s*(?://|#|\}|namespace\b|using\b|typedef\b|static_assert\b|"
        r"VALMOD_|return\b|if\b|for\b|while\b|switch\b|else\b)")

    def check_core_docs(self):
        for path in find_files(self.root, DOCUMENTED_API_DIRS, (".h",)):
            dirname = os.path.relpath(os.path.dirname(path), self.root)
            lines = read_lines(path)
            for lineno, line in enumerate(lines, 1):
                if waived(line, "core-docs"):
                    continue
                stripped = line.strip()
                if self.DECL_SKIP_RE.match(line):
                    continue
                # Only consider the first line of a declaration at namespace
                # or class scope (indent 0 or one level).
                indent = len(line) - len(line.lstrip(" "))
                if indent > 2 or not stripped:
                    continue
                # Continuation lines of a multi-line signature start with a
                # non-type token or the previous line ends with ( or ,.
                prev = lines[lineno - 2].rstrip() if lineno >= 2 else ""
                if prev.endswith((",", "(", "&&", "||", "+", "-", "=")):
                    continue
                m = self.FUNC_DECL_RE.match(stripped)
                if not m:
                    continue
                if stripped.startswith(("struct", "class", "enum")):
                    continue
                # Thread-safety annotation macros parenthesize their lock
                # argument on data-member declarations; they are not
                # function names (see src/util/thread_annotations.h).
                if m.group(1) in ("GUARDED_BY", "PT_GUARDED_BY", "REQUIRES",
                                  "REQUIRES_SHARED", "EXCLUDES", "ACQUIRE",
                                  "ACQUIRE_SHARED", "RELEASE",
                                  "RELEASE_SHARED", "TRY_ACQUIRE",
                                  "ASSERT_CAPABILITY", "CAPABILITY"):
                    continue
                doc = prev.strip()
                if not (doc.startswith("///") or doc.startswith("template")):
                    self.error(path, lineno, "core-docs",
                               f"public function '{m.group(1)}' in "
                               f"{dirname} needs a /// doc comment (this is "
                               "an API surface; say what it reproduces or "
                               "guarantees)")

    # --- check: no-float-distance --------------------------------------------

    FLOAT_RE = re.compile(r"(^|[^\w])float($|[^\w])")

    def check_no_float_distance(self):
        for path in find_files(self.root, DISTANCE_MATH_DIRS, (".h", ".cc")):
            lines = read_lines(path)
            for lineno, line in enumerate(lines, 1):
                if waived(line, "no-float-distance",
                          lines[lineno - 2] if lineno >= 2 else ""):
                    continue
                if self.FLOAT_RE.search(strip_comments_and_strings(line)):
                    self.error(path, lineno, "no-float-distance",
                               "distance math is double-only (Eq. 2 "
                               "admissibility analysis assumes 64-bit); "
                               "no `float` in " + ", ".join(DISTANCE_MATH_DIRS))

    # --- check: no-unbounded-queue -------------------------------------------

    QUEUE_MEMBER_RE = re.compile(r"\bstd::(?:deque|queue)\s*<[^;]*;")
    CAPACITY_MENTION_RE = re.compile(r"capacit|bound", re.IGNORECASE)

    def check_no_unbounded_queue(self):
        for path in find_files(self.root, BOUNDED_QUEUE_DIRS, (".h", ".cc")):
            lines = read_lines(path)
            for lineno, line in enumerate(lines, 1):
                if waived(line, "no-unbounded-queue",
                          lines[lineno - 2] if lineno >= 2 else ""):
                    continue
                if not self.QUEUE_MEMBER_RE.search(
                        strip_comments_and_strings(line)):
                    continue
                # The declaration (or a comment within two lines of it) must
                # name the capacity bound.
                lo = max(0, lineno - 3)
                hi = min(len(lines), lineno + 2)
                window = "\n".join(lines[lo:hi])
                if self.CAPACITY_MENTION_RE.search(window):
                    continue
                self.error(path, lineno, "no-unbounded-queue",
                           "std::deque/std::queue members in src/service "
                           "must document their capacity bound within two "
                           "lines (the service promises backpressure, "
                           "never unbounded queue growth)")

    # --- check: no-using-namespace -------------------------------------------

    USING_NS_RE = re.compile(r"^\s*using\s+namespace\b")

    def check_no_using_namespace(self):
        for path in find_files(self.root, HEADER_GUARD_DIRS, (".h",)):
            for lineno, line in enumerate(read_lines(path), 1):
                if waived(line, "no-using-namespace"):
                    continue
                if self.USING_NS_RE.match(strip_comments_and_strings(line)):
                    self.error(path, lineno, "no-using-namespace",
                               "headers must not inject namespaces into "
                               "their includers")

    # --- check: self-include-first -------------------------------------------

    INCLUDE_RE = re.compile(r'^#include\s+"([^"]+)"')

    def check_self_include_first(self):
        for path in find_files(self.root, SRC_DIRS, (".cc",)):
            rel = os.path.relpath(path, self.root)
            own_header = rel[len("src/"):-len(".cc")] + ".h"
            if not os.path.exists(
                    os.path.join(self.root, "src", own_header)):
                continue  # e.g. a main() translation unit with no header
            first_include = None
            first_lineno = 0
            for lineno, line in enumerate(read_lines(path), 1):
                m = self.INCLUDE_RE.match(line)
                if m:
                    first_include = m.group(1)
                    first_lineno = lineno
                    break
                if line.startswith("#include <"):
                    first_include = line
                    first_lineno = lineno
                    break
            if first_include != own_header:
                if waived(read_lines(path)[first_lineno - 1],
                          "self-include-first"):
                    continue
                self.error(path, first_lineno or 1, "self-include-first",
                           f'first include must be "{own_header}" so the '
                           "header proves self-contained")

    # --- check: obs-span-names -----------------------------------------------

    SPAN_CTOR_RE = re.compile(r'\bTraceSpan\b[^("\n]*\(\s*"([^"]*)"')
    SPAN_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

    def check_obs_span_names(self):
        for path in find_files(self.root, SPAN_NAME_DIRS, (".h", ".cc")):
            lines = read_lines(path)
            seen = {}
            for lineno, line in enumerate(lines, 1):
                if waived(line, "obs-span-names",
                          lines[lineno - 2] if lineno >= 2 else ""):
                    continue
                # Strip trailing // comments only: the span name itself is a
                # string literal, which strip_comments_and_strings would
                # blank out. Span names never contain slashes.
                code = line.split("//", 1)[0]
                for m in self.SPAN_CTOR_RE.finditer(code):
                    name = m.group(1)
                    if not self.SPAN_NAME_RE.match(name):
                        self.error(path, lineno, "obs-span-names",
                                   f"span name '{name}' must be snake_case "
                                   "([a-z][a-z0-9_]*): span names are the "
                                   "trace export's public vocabulary")
                    elif name in seen:
                        self.error(path, lineno, "obs-span-names",
                                   f"span name '{name}' already used at "
                                   f"line {seen[name]}; names must be "
                                   "unique per file so trace groupings "
                                   "stay unambiguous")
                    else:
                        seen[name] = lineno

    # --- check: guarded-by-required ------------------------------------------

    CLASS_HEAD_RE = re.compile(r"^(\s*)(?:class|struct)\s+[A-Za-z_]\w*")
    MUTEX_MEMBER_RE = re.compile(
        r"^\s*(?:mutable\s+)?(?:valmod::)?(?:Mutex|SharedMutex)\s+\w+\s*;")
    LOCK_TYPE_RE = re.compile(
        r"^\s*(?:mutable\s+)?(?:valmod::)?(?:Mutex|SharedMutex|CondVar)\b")
    GUARD_ANNOT_RE = re.compile(r"\b(?:PT_)?GUARDED_BY\s*\(")
    UNGUARDED_COMMENT_RE = re.compile(r"//+\s*unguarded:")
    MEMBER_EXEMPT_RE = re.compile(
        r"^\s*(?:static\b|const\b|constexpr\b|std::atomic\b)")

    def _class_member_statements(self, lines):
        """Yields (class_first_lineno, [(member_first_lineno, stmt)]) per
        class/struct, where stmt joins a member declaration's lines with
        comments and strings stripped. Relies on the clang-format layout
        every file here follows (format-check in CI): the class head and
        its `{` share a line, members sit one indent level in, and the
        closing `};` matches the head's indent."""
        stripped = [strip_comments_and_strings(l) for l in lines]
        stack = []  # [(indent, first_lineno, members)]
        skip_body_indent = None  # inside an inline method body
        i = 0
        while i < len(stripped):
            line = stripped[i].rstrip()
            lineno = i + 1
            indent = len(line) - len(line.lstrip(" "))
            bare = line.strip()
            if skip_body_indent is not None:
                if bare in ("}", "};") and indent == skip_body_indent:
                    skip_body_indent = None
                i += 1
                continue
            head = self.CLASS_HEAD_RE.match(line)
            if head and "{" in line and ";" not in line:
                stack.append((indent, lineno, []))
                i += 1
                continue
            if stack and bare.startswith("};") and indent == stack[-1][0]:
                _, first, members = stack.pop()
                yield first, members
                i += 1
                continue
            if stack and bare and indent == stack[-1][0] + 2:
                # Accumulate one statement from this member-indent line.
                stmt_lines = [line]
                first = lineno
                while not stmt_lines[-1].rstrip().endswith((";", "{", "}")):
                    i += 1
                    if i >= len(stripped):
                        break
                    stmt_lines.append(stripped[i].rstrip())
                stmt = " ".join(s.strip() for s in stmt_lines)
                if stmt.endswith("{"):
                    # An inline method body opens: skip to its closing
                    # brace at this indent.
                    skip_body_indent = indent
                elif stmt.endswith(";"):
                    stack[-1][2].append((first, stmt))
            i += 1

    def _has_unguarded_reason(self, lines, first_lineno):
        """True when the declaration line or the comment block directly
        above it contains `// unguarded: <reason>`."""
        idx = first_lineno - 1
        if self.UNGUARDED_COMMENT_RE.search(lines[idx]):
            return True
        for back in range(1, 4):
            j = idx - back
            if j < 0:
                return False
            text = lines[j].strip()
            if not text.startswith("//"):
                return False
            if self.UNGUARDED_COMMENT_RE.search(lines[j]):
                return True
        return False

    def check_guarded_by_required(self):
        for path in find_files(self.root, GUARDED_BY_DIRS, (".h", ".cc")):
            lines = read_lines(path)
            for _, members in self._class_member_statements(lines):
                if not any(self.MUTEX_MEMBER_RE.match(stmt)
                           for _, stmt in members):
                    continue  # class holds no capability; nothing to guard
                for first, stmt in members:
                    if waived(lines[first - 1], "guarded-by-required",
                              lines[first - 2] if first >= 2 else ""):
                        continue
                    if self.GUARD_ANNOT_RE.search(stmt):
                        continue
                    if self.LOCK_TYPE_RE.match(stmt):
                        continue
                    if self.MEMBER_EXEMPT_RE.match(stmt):
                        continue
                    # After the GUARDED_BY branch has fired, any
                    # parenthesis left in the statement marks a function
                    # declaration (or a paren-initialized member, which
                    # this heuristic deliberately leaves to review): data
                    # members here use brace or `=` initializers.
                    if "(" in stmt:
                        continue
                    if self._has_unguarded_reason(lines, first):
                        continue
                    name = re.search(r"([A-Za-z_]\w*)\s*(?:=.*|\{.*\})?;$",
                                     stmt)
                    label = name.group(1) if name else stmt
                    self.error(path, first, "guarded-by-required",
                               f"member '{label}' of a mutex-holding class "
                               "needs GUARDED_BY(...)/PT_GUARDED_BY(...) or "
                               "a `// unguarded: <reason>` comment — an "
                               "unannotated member is invisible to the "
                               "thread-safety analysis")

    def run(self):
        self.check_header_guards()
        self.check_no_pow_square()
        self.check_span_by_value()
        self.check_no_naked_new()
        self.check_core_docs()
        self.check_no_float_distance()
        self.check_no_unbounded_queue()
        self.check_no_using_namespace()
        self.check_self_include_first()
        self.check_obs_span_names()
        self.check_guarded_by_required()
        return self.errors


_FILE_CACHE = {}


def read_lines(path):
    if path not in _FILE_CACHE:
        with open(path, encoding="utf-8") as f:
            _FILE_CACHE[path] = f.read().splitlines()
    return _FILE_CACHE[path]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--list", action="store_true",
                        help="print the list of checks and exit")
    args = parser.parse_args()
    if args.list:
        print(__doc__)
        return 0
    root = os.path.abspath(args.root)
    # A wrong --root must fail loudly, not pass vacuously over zero files.
    for required in ("src", "tests", "tools"):
        if not os.path.isdir(os.path.join(root, required)):
            print(f"lint_invariants: {root} has no {required}/ directory; "
                  "is --root the repository root?", file=sys.stderr)
            return 2
    errors = Linter(root).run()
    for e in errors:
        print(e)
    if errors:
        print(f"\nlint_invariants: {len(errors)} violation(s). See "
              "tools/lint_invariants.py --list for the rule rationale.")
        return 1
    print("lint_invariants: all invariants hold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
