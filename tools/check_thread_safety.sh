#!/usr/bin/env bash
# Negative-compile proof of the thread-safety analysis: compiles
# tests/util/thread_annotations_negative.cc once per seeded locking bug
# with clang -Wthread-safety -Werror=thread-safety and asserts each one is
# REJECTED, plus once with no bug to prove the baseline compiles. A bug
# that compiles means the analysis has gone blind (annotation macros
# expanded to nothing under clang, wrapper attributes dropped, ...).
#
# Exits 77 (the ctest/automake SKIP convention) when no clang is on PATH —
# the analysis is clang-only, and the CI thread-safety job provides clang.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SOURCE="$ROOT/tests/util/thread_annotations_negative.cc"

CLANG="${CLANG:-}"
if [ -z "$CLANG" ]; then
  for candidate in clang++ clang++-20 clang++-19 clang++-18 clang++-17; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CLANG="$candidate"
      break
    fi
  done
fi
if [ -z "$CLANG" ]; then
  echo "SKIP: no clang++ on PATH (thread-safety analysis is clang-only)"
  exit 77
fi

FLAGS=(-std=c++20 -fsyntax-only -I"$ROOT/src"
       -Wthread-safety -Wthread-safety-beta
       -Werror=thread-safety -Werror=thread-safety-beta)

echo "using $($CLANG --version | head -n 1)"

# Baseline: with no seeded bug the TU must compile cleanly, otherwise the
# per-case failures below would prove nothing.
if ! "$CLANG" "${FLAGS[@]}" "$SOURCE"; then
  echo "FAIL: baseline (no seeded bug) does not compile"
  exit 1
fi
echo "ok: baseline compiles cleanly"

CASES=(
  NEGATIVE_CASE_GUARDED_READ
  NEGATIVE_CASE_REQUIRES_UNHELD
  NEGATIVE_CASE_DOUBLE_LOCK
  NEGATIVE_CASE_MISSING_RELEASE
  NEGATIVE_CASE_READER_WRITES
)

failures=0
for case_name in "${CASES[@]}"; do
  if "$CLANG" "${FLAGS[@]}" "-D$case_name" "$SOURCE" 2>/dev/null; then
    echo "FAIL: $case_name compiled — the analysis missed a seeded lock bug"
    failures=$((failures + 1))
  else
    echo "ok: $case_name rejected"
  fi
done

if [ "$failures" -ne 0 ]; then
  exit 1
fi
echo "all ${#CASES[@]} seeded lock bugs rejected"
